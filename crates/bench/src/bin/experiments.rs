//! Regenerates every table and figure of the paper (see DESIGN.md §5 and
//! EXPERIMENTS.md).
//!
//! ```text
//! cargo run --release -p byzclock-bench --bin experiments -- [t1|f1|f2|f3|f4|a1|a2|r1|s1|m1|all]
//! ```
//!
//! Knobs: `BYZCLOCK_TRIALS` (trial count scale), `BYZCLOCK_THREADS`.

use byzclock_baselines::{DwClock, PhaseKingScheme, PkClock, QueenClock, QueenScheme};
use byzclock_bench::{default_threads, md_table, parallel_trials, trials, Summary};
use byzclock_coin::{
    adversary::{CoinNoiseAdversary, InconsistentDealer, RecoverEquivocator},
    measure_coin, ticket_clock_sync, ticket_four_clock, CoinStats, TicketCoinScheme,
    XorCoinScheme,
};
use byzclock_core::adversary::{RandAwareSplitter, SplitVoteAdversary};
use byzclock_core::{
    run_until_stable_sync, BrokenTwoClock, ClockSync, DigitalClock, OracleBeacon,
    RecursiveClock, SharedFourClock, TwoClock,
};
use byzclock_sim::{
    Adversary, Application, FaultEvent, FaultKind, FaultPlan, SilentAdversary, SimBuilder,
};

/// Stability window used to declare convergence (Definition 3.2 streak).
const WINDOW: u64 = 8;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    let run_all = which == "all";
    println!("# byzclock experiments — PODC'08 reproduction\n");
    println!(
        "(trials scale: BYZCLOCK_TRIALS={}, threads: {})\n",
        trials(1),
        default_threads()
    );
    if run_all || which == "t1" {
        t1_table_1();
    }
    if run_all || which == "f1" {
        f1_coin_contract();
    }
    if run_all || which == "f2" {
        f2_two_clock_contract();
    }
    if run_all || which == "f3" {
        f3_four_clock_contract();
    }
    if run_all || which == "f4" {
        f4_k_clock_contract();
    }
    if run_all || which == "a1" {
        a1_broken_rand_ablation();
    }
    if run_all || which == "a2" {
        a2_shared_pipeline_ablation();
    }
    if run_all || which == "r1" {
        r1_resiliency_boundary();
    }
    if run_all || which == "s1" {
        s1_self_stabilization();
    }
    if run_all || which == "m1" {
        m1_message_complexity();
    }
}

/// Convergence samples for a clock application built by `make`, from
/// corrupted starts, under the adversary built by `adv`.
fn converge_samples<A, Adv>(
    n: usize,
    f: usize,
    horizon: u64,
    ntrials: u64,
    make: impl Fn(byzclock_sim::NodeCfg, &mut byzclock_sim::SimRng) -> A + Sync,
    adv: impl Fn() -> Adv + Sync,
) -> Vec<Option<u64>>
where
    A: Application + DigitalClock,
    Adv: Adversary<A::Msg>,
{
    parallel_trials(ntrials, default_threads(), |seed| {
        let mut sim = SimBuilder::new(n, f).seed(seed).build(
            |cfg, rng| {
                let mut app = make(cfg, rng);
                app.corrupt(rng); // converge from an arbitrary state
                app
            },
            adv(),
        );
        run_until_stable_sync(&mut sim, horizon, WINDOW)
    })
}

// ---------------------------------------------------------------------------
// T1: Table 1
// ---------------------------------------------------------------------------

fn t1_table_1() {
    println!("## T1 — Table 1: convergence beats (measured) by algorithm and n\n");
    println!(
        "k = 8; f = ⌊(n−1)/3⌋ (⌊(n−1)/4⌋ for [15]-queen); corrupted starts; silent\n\
         Byzantine nodes (adversarial stress is measured in R1/A1). Cells:\n\
         mean beats (p95) over trials.\n"
    );
    let k = 8u64;
    let ns = [4usize, 7, 10, 13];
    let mut rows: Vec<Vec<String>> = Vec::new();

    // [10] Dolev–Welch-style probabilistic (expected exponential).
    let mut dw_row = vec!["[10] probabilistic, local coins (O(2^{2(n-f)}))".to_string()];
    for &n in &ns {
        let f = (n - 1) / 3;
        let horizon: u64 = 300_000;
        let ntrials = trials(10).min(10);
        let samples =
            converge_samples(n, f, horizon, ntrials, |cfg, _| DwClock::new(cfg, k), || {
                SilentAdversary
            });
        dw_row.push(Summary::of(&samples).cell(horizon));
    }
    rows.push(dw_row);

    // [15]-shaped deterministic queen clock (f < n/4).
    let mut q_row = vec!["[15] deterministic queen (O(f), f<n/4)".to_string()];
    for &n in &ns {
        let f = (n - 1) / 4;
        if f == 0 {
            q_row.push("f=0 (n too small)".to_string());
            continue;
        }
        let horizon: u64 = 5_000;
        let samples = converge_samples(
            n,
            f,
            horizon,
            trials(20),
            move |cfg, _| QueenClock::new(QueenScheme::new(cfg), k),
            || SilentAdversary,
        );
        q_row.push(Summary::of(&samples).cell(horizon));
    }
    rows.push(q_row);

    // [7]-shaped deterministic phase-king clock (f < n/3).
    let mut pk_row = vec!["[7] deterministic phase-king (O(f), f<n/3)".to_string()];
    for &n in &ns {
        let f = (n - 1) / 3;
        let horizon: u64 = 5_000;
        let samples = converge_samples(
            n,
            f,
            horizon,
            trials(20),
            move |cfg, _| PkClock::new(PhaseKingScheme::new(cfg), k),
            || SilentAdversary,
        );
        pk_row.push(Summary::of(&samples).cell(horizon));
    }
    rows.push(pk_row);

    // Current paper: ss-Byz-Clock-Sync over the GVSS ticket coin.
    let mut cur_row = vec!["**current** ss-Byz-Clock-Sync (expected O(1), f<n/3)".to_string()];
    for &n in &ns {
        let f = (n - 1) / 3;
        let horizon: u64 = 5_000;
        let samples = converge_samples(
            n,
            f,
            horizon,
            trials(20),
            move |cfg, rng| ticket_clock_sync(cfg, k, rng),
            || SilentAdversary,
        );
        cur_row.push(Summary::of(&samples).cell(horizon));
    }
    rows.push(cur_row);

    let headers: Vec<String> = std::iter::once("algorithm".to_string())
        .chain(ns.iter().map(|n| format!("n={n}")))
        .collect();
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    println!("{}", md_table(&headers_ref, &rows));
    println!(
        "Semi-synchronous rows of Table 1 (analytic, different network model —\n\
         bounded-delay is this paper's future work, §6.3):\n\
         [10] semi-sync probabilistic: O(n^(6(n-f))), f<n/3;\n\
         [6,5] semi-sync deterministic: O(f), f<n/3.\n"
    );
}

// ---------------------------------------------------------------------------
// F1: Fig. 1 contract — the pipelined coin
// ---------------------------------------------------------------------------

fn f1_coin_contract() {
    println!("## F1 — Fig. 1 contract: ss-Byz-Coin-Flip quality (p0 / p1 / safe-beat rate)\n");
    let beats = 40 * trials(1).clamp(1, 10);
    let mut rows = Vec::new();
    for &n in &[4usize, 7, 10] {
        let f = (n - 1) / 3;
        let cell = |s: CoinStats| {
            format!("p0={:.2} p1={:.2} agree={:.2}", s.p0(), s.p1(), s.agreement_rate())
        };
        let silent = measure_coin(n, f, 1, beats, TicketCoinScheme::new, SilentAdversary);
        let noise = measure_coin(
            n,
            f,
            2,
            beats,
            TicketCoinScheme::new,
            CoinNoiseAdversary { depth: 4, targets: n },
        );
        let dealer = measure_coin(
            n,
            f,
            3,
            beats,
            TicketCoinScheme::new,
            InconsistentDealer { targets: n, f },
        );
        let recover = measure_coin(
            n,
            f,
            4,
            beats,
            TicketCoinScheme::new,
            RecoverEquivocator { recover_slot: 3, targets: n },
        );
        let xor_recover = measure_coin(
            n,
            f,
            5,
            beats,
            XorCoinScheme::new,
            RecoverEquivocator { recover_slot: 3, targets: 1 },
        );
        rows.push(vec![
            format!("n={n}, f={f}"),
            cell(silent),
            cell(noise),
            cell(dealer),
            cell(recover),
            cell(xor_recover),
        ]);
    }
    println!(
        "{}",
        md_table(
            &[
                "cluster",
                "ticket / silent",
                "ticket / noise",
                "ticket / bad dealer",
                "ticket / recover-equiv",
                "XOR / recover-equiv",
            ],
            &rows
        )
    );
    println!(
        "Contract: p0 and p1 are bounded away from 0 under every adversary\n\
         (Def. 2.6/2.7); honest ticket-coin frequencies follow the FM lottery\n\
         (p0 ~ 1-(1-1/n)^n, p1 ~ (1-1/n)^n).\n"
    );
}

// ---------------------------------------------------------------------------
// F2: Fig. 2 contract — 2-clock convergence law and tail
// ---------------------------------------------------------------------------

fn f2_two_clock_contract() {
    println!("## F2 — Fig. 2 contract: ss-Byz-2-Clock convergence vs coin quality\n");
    println!(
        "n=7, f=2, splitter adversary, OracleRand with P[safe beat] = c1\n\
         (split beats are adversarial). Theorem 2 predicts expected beats\n\
         = O(1/(c2*c1^2)) with c2 = min(p0,p1) = c1/2.\n"
    );
    let ntrials = trials(60);
    let horizon = 20_000u64;
    let mut rows = Vec::new();
    for &c1 in &[1.0f64, 0.8, 0.5, 0.3] {
        let samples = parallel_trials(ntrials, default_threads(), |seed| {
            let beacon = OracleBeacon::new(c1 / 2.0, c1 / 2.0, seed.wrapping_add(9_000));
            let mut sim = SimBuilder::new(7, 2).seed(seed).build(
                move |cfg, rng| {
                    let mut c = TwoClock::new(cfg, beacon.source(cfg.id));
                    c.corrupt(rng);
                    c
                },
                SplitVoteAdversary,
            );
            run_until_stable_sync(&mut sim, horizon, WINDOW)
        });
        let s = Summary::of(&samples);
        let analytic = 1.0 / ((c1 / 2.0) * c1 * c1);
        rows.push(vec![format!("{c1:.1}"), s.cell(horizon), format!("{analytic:.1}")]);
    }
    println!(
        "{}",
        md_table(&["c1 = p0+p1", "measured beats mean (p95)", "analytic 1/(c2*c1^2)"], &rows)
    );

    // Geometric tail (Remark 3.2): P[T > l] decays exponentially.
    println!("Tail of the convergence time (perfect coin, splitter adversary):\n");
    let samples = parallel_trials(trials(400), default_threads(), |seed| {
        let beacon = OracleBeacon::perfect(seed.wrapping_add(77));
        let mut sim = SimBuilder::new(7, 2).seed(seed).build(
            move |cfg, rng| {
                let mut c = TwoClock::new(cfg, beacon.source(cfg.id));
                c.corrupt(rng);
                c
            },
            SplitVoteAdversary,
        );
        run_until_stable_sync(&mut sim, 2_000, WINDOW)
    });
    let total = samples.len() as f64;
    let mut rows = Vec::new();
    for l in [2u64, 4, 8, 16, 32, 64] {
        let exceed = samples.iter().filter(|s| s.map_or(true, |t| t > l)).count();
        rows.push(vec![format!("{l}"), format!("{:.3}", exceed as f64 / total)]);
    }
    println!("{}", md_table(&["l (beats)", "P[T > l]"], &rows));
}

// ---------------------------------------------------------------------------
// F3: Fig. 3 contract — 4-clock
// ---------------------------------------------------------------------------

fn f3_four_clock_contract() {
    println!("## F3 — Fig. 3 contract: ss-Byz-4-Clock (GVSS ticket coin)\n");
    let horizon = 3_000u64;
    let samples = converge_samples(
        7,
        2,
        horizon,
        trials(30),
        |cfg, rng| ticket_four_clock(cfg, rng),
        || SilentAdversary,
    );
    let s = Summary::of(&samples);
    println!("convergence (n=7, f=2): {}\n", s.cell(horizon));

    // A2 step ratio after convergence (Theorem 3's every-other-beat gate).
    let mut sim = SimBuilder::new(7, 2)
        .seed(5)
        .build(|cfg, rng| ticket_four_clock(cfg, rng), SilentAdversary);
    run_until_stable_sync(&mut sim, horizon, WINDOW).expect("4-clock converged");
    let before: Vec<f64> = sim.correct_apps().map(|(_, a)| a.a2_step_ratio()).collect();
    sim.run_beats(200);
    let after: Vec<f64> = sim.correct_apps().map(|(_, a)| a.a2_step_ratio()).collect();
    println!(
        "A2 step ratio drifts to 1/2 after convergence: at convergence {:.3}, +200 beats {:.3}\n",
        before.iter().sum::<f64>() / before.len() as f64,
        after.iter().sum::<f64>() / after.len() as f64,
    );
}

// ---------------------------------------------------------------------------
// F4: Fig. 4 contract — k-independence
// ---------------------------------------------------------------------------

fn f4_k_clock_contract() {
    println!("## F4 — Fig. 4 contract: convergence vs k (n=7, f=2)\n");
    println!(
        "ss-Byz-Clock-Sync is flat in k (Theorem 4); the paragraph-5\n\
         recursive doubling grows with log k; Dolev–Welch blows up with k.\n\
         Oracle coins isolate k-scaling from coin cost; DW uses local coins.\n"
    );
    let ntrials = trials(30);
    let mut rows = Vec::new();
    for &k in &[4u64, 16, 64, 256, 1024] {
        let horizon_cs = 5_000u64;
        let cs = parallel_trials(ntrials, default_threads(), |seed| {
            let b1 = OracleBeacon::perfect(seed.wrapping_add(1));
            let b2 = OracleBeacon::perfect(seed.wrapping_add(2));
            let b3 = OracleBeacon::perfect(seed.wrapping_add(3));
            let mut sim = SimBuilder::new(7, 2).seed(seed).build(
                move |cfg, rng| {
                    let mut c = ClockSync::new(
                        cfg,
                        k,
                        b1.source(cfg.id),
                        b2.source(cfg.id),
                        b3.source(cfg.id),
                    );
                    c.corrupt(rng);
                    c
                },
                SilentAdversary,
            );
            run_until_stable_sync(&mut sim, horizon_cs, WINDOW)
        });
        let levels = (k as f64).log2().ceil() as usize;
        let horizon_rec = 20_000u64;
        let rec = parallel_trials(ntrials, default_threads(), |seed| {
            let beacons: Vec<OracleBeacon> = (0..levels)
                .map(|j| OracleBeacon::perfect(seed.wrapping_add(100 + j as u64)))
                .collect();
            let mut sim = SimBuilder::new(7, 2).seed(seed).build(
                move |cfg, rng| {
                    let beacons = beacons.clone();
                    let mut c =
                        RecursiveClock::new(cfg, levels, move |j| beacons[j].source(cfg.id));
                    c.corrupt(rng);
                    c
                },
                SilentAdversary,
            );
            run_until_stable_sync(&mut sim, horizon_rec, WINDOW)
        });
        let horizon_dw = 300_000u64;
        let dw = parallel_trials(ntrials.min(10), default_threads(), |seed| {
            let mut sim = SimBuilder::new(7, 2).seed(seed).build(
                |cfg, rng| {
                    let mut c = DwClock::new(cfg, k);
                    c.corrupt(rng);
                    c
                },
                SilentAdversary,
            );
            run_until_stable_sync(&mut sim, horizon_dw, WINDOW)
        });
        rows.push(vec![
            format!("{k}"),
            Summary::of(&cs).cell(horizon_cs),
            format!("{} (levels={levels})", Summary::of(&rec).cell(horizon_rec)),
            Summary::of(&dw).cell(horizon_dw),
        ]);
    }
    println!(
        "{}",
        md_table(
            &["k", "ss-Byz-Clock-Sync", "sec. 5 recursive doubling", "Dolev–Welch local-coin"],
            &rows
        )
    );
}

// ---------------------------------------------------------------------------
// A1: Remark 3.1 ablation
// ---------------------------------------------------------------------------

fn a1_broken_rand_ablation() {
    println!("## A1 — Remark 3.1 ablation: sender-side substitution is exploitable\n");
    println!(
        "Both clocks run over a perfect beacon; the adversary holds a beacon\n\
         handle (= rushing knowledge of the coin). The correct 2-clock\n\
         shrugs it off; the broken variant (senders substitute *yesterday's*\n\
         bit) lets the adversary steer vote counts with full knowledge.\n"
    );
    let ntrials = trials(60);
    let horizon = 5_000u64;
    let correct = parallel_trials(ntrials, default_threads(), |seed| {
        let beacon = OracleBeacon::perfect(seed.wrapping_add(31));
        let nodes = beacon.clone();
        let mut sim = SimBuilder::new(7, 2).seed(seed).build(
            move |cfg, rng| {
                let mut c = TwoClock::new(cfg, nodes.source(cfg.id));
                c.corrupt(rng);
                c
            },
            RandAwareSplitter::new(beacon),
        );
        run_until_stable_sync(&mut sim, horizon, WINDOW)
    });
    let broken = parallel_trials(ntrials, default_threads(), |seed| {
        let beacon = OracleBeacon::perfect(seed.wrapping_add(31));
        let nodes = beacon.clone();
        let mut sim = SimBuilder::new(7, 2).seed(seed).build(
            move |cfg, rng| {
                let mut c = BrokenTwoClock::new(cfg, nodes.source(cfg.id));
                c.corrupt(rng);
                c
            },
            RandAwareSplitter::new(beacon),
        );
        run_until_stable_sync(&mut sim, horizon, WINDOW)
    });
    let rows = vec![
        vec!["ss-Byz-2-Clock (correct)".to_string(), Summary::of(&correct).cell(horizon)],
        vec!["broken variant (Remark 3.1)".to_string(), Summary::of(&broken).cell(horizon)],
    ];
    println!("{}", md_table(&["protocol", "convergence beats (n=7, f=2)"], &rows));
}

// ---------------------------------------------------------------------------
// A2: Remark 4.1 ablation — shared coin pipeline
// ---------------------------------------------------------------------------

fn a2_shared_pipeline_ablation() {
    println!("## A2 — Remark 4.1 ablation: per-sub-clock pipelines vs one shared pipeline\n");
    let ntrials = trials(20);
    let horizon = 3_000u64;
    let two = converge_samples(
        7,
        2,
        horizon,
        ntrials,
        |cfg, rng| ticket_four_clock(cfg, rng),
        || SilentAdversary,
    );
    let shared = converge_samples(
        7,
        2,
        horizon,
        ntrials,
        |cfg, rng| SharedFourClock::new(cfg, byzclock_coin::ticket_coin(cfg, rng)),
        || SilentAdversary,
    );
    // Traffic (messages / bytes per beat): run 100 beats each.
    let (m2, b2) = {
        let mut sim = SimBuilder::new(7, 2)
            .seed(1)
            .build(|cfg, rng| ticket_four_clock(cfg, rng), SilentAdversary);
        sim.run_beats(100);
        (sim.stats().mean_correct_msgs_per_beat(), sim.stats().mean_correct_bytes_per_beat())
    };
    let (m1, b1) = {
        let mut sim = SimBuilder::new(7, 2).seed(1).build(
            |cfg, rng| SharedFourClock::new(cfg, byzclock_coin::ticket_coin(cfg, rng)),
            SilentAdversary,
        );
        sim.run_beats(100);
        (sim.stats().mean_correct_msgs_per_beat(), sim.stats().mean_correct_bytes_per_beat())
    };
    let rows = vec![
        vec![
            "two pipelines (paper)".to_string(),
            Summary::of(&two).cell(horizon),
            format!("{m2:.0}"),
            format!("{b2:.0}"),
        ],
        vec![
            "shared pipeline (Remark 4.1)".to_string(),
            Summary::of(&shared).cell(horizon),
            format!("{m1:.0}"),
            format!("{b1:.0}"),
        ],
    ];
    println!(
        "{}",
        md_table(&["variant", "convergence beats", "msgs/beat", "bytes/beat"], &rows)
    );
}

// ---------------------------------------------------------------------------
// R1: resiliency boundary
// ---------------------------------------------------------------------------

fn r1_resiliency_boundary() {
    println!("## R1 — resiliency boundary (f < n/3 optimality; f < n/4 for the queen)\n");
    let ntrials = trials(20);
    let horizon = 2_000u64;
    let rate = |samples: &[Option<u64>]| {
        let ok = samples.iter().filter(|s| s.is_some()).count();
        format!("{}/{} converged", ok, samples.len())
    };
    // ss-Byz-Clock-Sync with oracle coin + splitter, legal vs boundary f.
    let run_cs = |n: usize, f: usize| {
        parallel_trials(ntrials, default_threads(), move |seed| {
            let b1 = OracleBeacon::perfect(seed.wrapping_add(1));
            let b2 = OracleBeacon::perfect(seed.wrapping_add(2));
            let b3 = OracleBeacon::perfect(seed.wrapping_add(3));
            let mut sim = SimBuilder::new(n, f).seed(seed).build(
                move |cfg, rng| {
                    let mut c = ClockSync::new(
                        cfg,
                        8,
                        b1.source(cfg.id),
                        b2.source(cfg.id),
                        b3.source(cfg.id),
                    );
                    c.corrupt(rng);
                    c
                },
                SplitVoteAdversary,
            );
            run_until_stable_sync(&mut sim, horizon, WINDOW)
        })
    };
    let legal = run_cs(7, 2); // 2 < 7/3
    let boundary = run_cs(6, 2); // 2 = 6/3 — violates f < n/3
    // Queen clock under an equivocating Byzantine queen, within budget.
    let queen_legal = parallel_trials(ntrials, default_threads(), move |seed| {
        let depth = byzclock_baselines::queen_rounds(1) as u8;
        let mut sim = SimBuilder::new(5, 1)
            .seed(seed)
            .byzantine([0u16])
            .build(
                move |cfg, rng| {
                    let mut c = QueenClock::new(QueenScheme::new(cfg), 8);
                    c.corrupt(rng);
                    c
                },
                byzclock_baselines::BaEquivocator { depth, mixed_bits: false },
            );
        run_until_stable_sync(&mut sim, horizon, WINDOW)
    });
    let rows = vec![
        vec!["ss-Byz-Clock-Sync n=7, f=2 + splitter (legal)".into(), rate(&legal)],
        vec!["ss-Byz-Clock-Sync n=6, f=2 + splitter (f = n/3)".into(), rate(&boundary)],
        vec![
            "queen clock n=5, f=1 + equivocating queen (legal)".into(),
            rate(&queen_legal),
        ],
    ];
    println!("{}", md_table(&["configuration", "success within horizon"], &rows));
    println!(
        "Queen boundary (f = n/4): in the *clock*, consensus validity shields an\n\
         already-unanimous steady state, so the violation shows up in one-shot\n\
         agreement from mixed inputs: the deterministic schedule in\n\
         `byzclock-baselines::consensus` test `queen_agreement_breaks_at_n_equals_4f...`\n\
         splits the queen protocol's outputs [0, 1, 1] at n=4, f=1 while the\n\
         phase-king protocol (n > 3f) stays in agreement under the same lies.\n"
    );
}

// ---------------------------------------------------------------------------
// S1: self-stabilization
// ---------------------------------------------------------------------------

fn s1_self_stabilization() {
    println!("## S1 — self-stabilization: recovery after transient memory corruption\n");
    println!(
        "Full GVSS stack (n=7, f=2, k=64). At beat 60: every correct node's\n\
         memory is scrambled and 100 phantom messages are replayed. Recovery\n\
         time is measured from the fault and compared with a fresh start.\n"
    );
    let ntrials = trials(30);
    let horizon = 3_000u64;
    let fresh = converge_samples(
        7,
        2,
        horizon,
        ntrials,
        |cfg, rng| ticket_clock_sync(cfg, 64, rng),
        || SilentAdversary,
    );
    let recovery = parallel_trials(ntrials, default_threads(), |seed| {
        let plan = FaultPlan::new(vec![
            FaultEvent { beat: 60, kind: FaultKind::CorruptAllCorrect },
            FaultEvent { beat: 60, kind: FaultKind::PhantomBurst { count: 100 } },
        ]);
        let mut sim = SimBuilder::new(7, 2).seed(seed).faults(plan).build(
            |cfg, rng| ticket_clock_sync(cfg, 64, rng),
            SilentAdversary,
        );
        sim.run_beats(61);
        run_until_stable_sync(&mut sim, 61 + horizon, WINDOW).map(|t| t.saturating_sub(61))
    });
    let rows = vec![
        vec!["fresh start (corrupted init)".to_string(), Summary::of(&fresh).cell(horizon)],
        vec![
            "post-fault recovery (beats after fault)".to_string(),
            Summary::of(&recovery).cell(horizon),
        ],
    ];
    println!("{}", md_table(&["scenario", "beats to stable sync"], &rows));
}

// ---------------------------------------------------------------------------
// M1: message complexity
// ---------------------------------------------------------------------------

fn m1_message_complexity() {
    println!("## M1 — message complexity per beat (correct senders, k = 64)\n");
    let mut rows = Vec::new();
    for &n in &[4usize, 7, 10, 13] {
        let f = (n - 1) / 3;
        let (cs_m, cs_b) = {
            let mut sim = SimBuilder::new(n, f)
                .seed(1)
                .build(|cfg, rng| ticket_clock_sync(cfg, 64, rng), SilentAdversary);
            sim.run_beats(50);
            (sim.stats().mean_correct_msgs_per_beat(), sim.stats().mean_correct_bytes_per_beat())
        };
        let (rec_m, rec_b) = {
            let levels = 6; // 2^6 = 64
            let mut sim = SimBuilder::new(n, f).seed(1).build(
                move |cfg, rng| {
                    RecursiveClock::new(cfg, levels, |_| byzclock_coin::ticket_coin(cfg, rng))
                },
                SilentAdversary,
            );
            sim.run_beats(50);
            (sim.stats().mean_correct_msgs_per_beat(), sim.stats().mean_correct_bytes_per_beat())
        };
        let (pk_m, pk_b) = {
            let mut sim = SimBuilder::new(n, f).seed(1).build(
                |cfg, _rng| PkClock::new(PhaseKingScheme::new(cfg), 64),
                SilentAdversary,
            );
            sim.run_beats(50);
            (sim.stats().mean_correct_msgs_per_beat(), sim.stats().mean_correct_bytes_per_beat())
        };
        let (dw_m, dw_b) = {
            let mut sim = SimBuilder::new(n, f)
                .seed(1)
                .build(|cfg, _rng| DwClock::new(cfg, 64), SilentAdversary);
            sim.run_beats(50);
            (sim.stats().mean_correct_msgs_per_beat(), sim.stats().mean_correct_bytes_per_beat())
        };
        rows.push(vec![
            format!("n={n}, f={f}"),
            format!("{cs_m:.0} / {cs_b:.0}"),
            format!("{rec_m:.0} / {rec_b:.0}"),
            format!("{pk_m:.0} / {pk_b:.0}"),
            format!("{dw_m:.0} / {dw_b:.0}"),
        ]);
    }
    println!(
        "{}",
        md_table(
            &[
                "cluster",
                "ClockSync (msgs/bytes)",
                "Recursive x6 levels",
                "PkClock (O(f) pipeline)",
                "DwClock",
            ],
            &rows
        )
    );
    println!(
        "Shape check: ClockSync's overhead over the 4-clock is a constant\n\
         (one extra broadcast + one coin pipeline); the recursive clock pays\n\
         log k pipelines; PkClock pays an O(f)-deep pipeline.\n"
    );
}
