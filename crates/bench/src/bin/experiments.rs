//! Regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p byzclock-bench --bin experiments -- \
//!     [--jsonl] [--backend=threads[:N]|procs[:N]] [--manifest=FILE] \
//!     [t1|f1|f2|f3|f4|a1|a2|r1|s1|m1|m2|d1|d2|all]
//! cargo run --release -p byzclock-bench --bin experiments -- \
//!     [--jsonl] spec "<scenario line>" ["<scenario line>" ...]
//! cargo run --release -p byzclock-bench --bin experiments -- \
//!     [--jsonl] model-check [two-clock|clock-sync|bd-clock|all] \
//!     [--window=1|2] [--max-states=N]
//! cargo run --release -p byzclock-bench --bin experiments -- \
//!     [--jsonl] lint [--rule=D1|P1|A1|W1|S1]
//! cargo run --release -p byzclock-bench --bin experiments -- \
//!     worker [--exact]
//! ```
//!
//! The full reference for the subcommands, `--jsonl`, `--backend` /
//! `--manifest`, the `worker` mode, the environment knobs, and the
//! offline compat-stub story lives in one place: the `byzclock-bench`
//! crate docs (`crates/bench/src/lib.rs`), mirrored in ARCHITECTURE.md's
//! appendix. In short: every run is constructed through the scenario API
//! — a [`ScenarioSpec`] resolved by the default [`ProtocolRegistry`] — so
//! each table cell is a replayable one-line spec (pass one back with
//! `spec` to rerun a single point).

use byzclock::coin::default_committee_size;
use byzclock::scenario::{
    default_registry, AdversarySpec, CoinSpec, FaultPlanSpec, MetricsSpec, ProtocolRegistry,
    RunReport, ScenarioSpec, WireSpec,
};
use byzclock_bench::shard::{worker_exact_requested, worker_loop};
use byzclock_bench::{
    default_threads, m2_max_n, md_table, parallel_trials, power_law_exponent, sweep_specs,
    sweep_specs_timed, trials, Summary, SweepBackend, SweepOptions,
};
use std::path::{Path, PathBuf};

fn main() {
    let mut jsonl = false;
    let mut backend = SweepBackend::Threads(default_threads());
    let mut backend_given = false;
    let mut manifest: Option<PathBuf> = None;
    let mut args: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        if arg == "--jsonl" {
            jsonl = true;
        } else if let Some(v) = arg.strip_prefix("--backend=") {
            backend = SweepBackend::parse(v).unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            });
            backend_given = true;
        } else if let Some(v) = arg.strip_prefix("--manifest=") {
            manifest = Some(PathBuf::from(v));
        } else {
            args.push(arg);
        }
    }
    let which = args.first().map(String::as_str).unwrap_or("all");
    if which == "worker" {
        // The worker half of the process-sharded sweep: spec lines on
        // stdin, one report-JSON line per spec on stdout (see the
        // `byzclock_bench::shard` module docs for the protocol).
        let exact = worker_exact_requested(&args[1..]);
        let registry = default_registry();
        if let Err(e) = worker_loop(
            &registry,
            exact,
            std::io::stdin().lock(),
            std::io::stdout().lock(),
        ) {
            eprintln!("worker i/o error: {e}");
            std::process::exit(1);
        }
        return;
    }
    let sweep_based = matches!(which, "d1" | "d2" | "m1" | "m2");
    if (backend_given || manifest.is_some()) && !sweep_based {
        eprintln!("--backend/--manifest apply to the sweep-based `d1`/`d2`/`m1`/`m2` grids only");
        std::process::exit(2);
    }
    if which == "spec" {
        run_spec_lines(&args[1..]);
        return;
    }
    if which == "model-check" {
        run_model_check(&args[1..], jsonl);
        return;
    }
    if which == "lint" {
        run_lint(&args[1..], jsonl);
        return;
    }
    if jsonl && !sweep_based {
        // The hand-aggregated paper tables have no JSONL form; refusing
        // beats silently mixing Markdown and JSON on one stream.
        eprintln!(
            "--jsonl applies to `spec`, `model-check`, `lint`, and the sweep-based \
             `d1`/`d2`/`m1`/`m2` grids only"
        );
        std::process::exit(2);
    }
    let run_all = which == "all";
    if !jsonl {
        println!("# byzclock experiments — PODC'08 reproduction\n");
        println!(
            "(trials scale: BYZCLOCK_TRIALS={}, threads: {}; every cell is a scenario spec)\n",
            trials(1),
            default_threads()
        );
    }
    if run_all || which == "t1" {
        t1_table_1();
    }
    if run_all || which == "f1" {
        f1_coin_contract();
    }
    if run_all || which == "f2" {
        f2_two_clock_contract();
    }
    if run_all || which == "f3" {
        f3_four_clock_contract();
    }
    if run_all || which == "f4" {
        f4_k_clock_contract();
    }
    if run_all || which == "a1" {
        a1_broken_rand_ablation();
    }
    if run_all || which == "a2" {
        a2_shared_pipeline_ablation();
    }
    if run_all || which == "r1" {
        r1_resiliency_boundary();
    }
    if run_all || which == "s1" {
        s1_self_stabilization();
    }
    let grid = GridOutput {
        jsonl,
        backend,
        manifest: manifest.as_deref(),
    };
    if run_all || which == "m1" {
        m1_message_complexity(grid);
    }
    if run_all || which == "m2" {
        // `all` stays interactive: the full curve's n=128/256 GVSS cells
        // are minutes each and belong to an explicit `m2` invocation
        // (which now runs to n=512 — the committee column carries the
        // tail, so the default cap costs seconds, not hours).
        m2_beat_rate_grid(grid, if run_all { 64 } else { 512 });
    }
    if run_all || which == "d1" {
        d1_bounded_delay_grid(grid);
    }
    if run_all || which == "d2" {
        d2_delay_tolerance_grid(grid);
    }
}

/// Output format and execution backend shared by the sweep-based grids
/// (`d1`/`d2`/`m1`/`m2`) — the flags that select them travel together.
#[derive(Clone, Copy)]
struct GridOutput<'a> {
    jsonl: bool,
    backend: SweepBackend,
    manifest: Option<&'a Path>,
}

impl GridOutput<'_> {
    /// Builds the [`SweepOptions`] every sweep-based grid shares: the
    /// worker command defaults to re-execing this very binary in `worker`
    /// mode.
    fn sweep_options(&self, exact: bool) -> SweepOptions {
        SweepOptions {
            manifest: self.manifest.map(Path::to_path_buf),
            exact,
            ..SweepOptions::default()
        }
    }
}

/// `experiments spec "<line>" [...]`: run each scenario line and dump one
/// report-JSON line per spec (inherently `--jsonl`-shaped output).
fn run_spec_lines(lines: &[String]) {
    if lines.is_empty() {
        eprintln!("usage: experiments [--jsonl] spec \"<scenario line>\" [\"<line>\" ...]");
        eprintln!("example: experiments spec \"clock-sync n=7 f=2 k=64 coin=ticket delay=2\"");
        std::process::exit(2);
    }
    let registry = default_registry();
    for line in lines {
        let spec = match ScenarioSpec::parse(line) {
            Ok(spec) => spec,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        };
        match registry.run(&spec) {
            Ok(report) => println!("{}", report.to_json()),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
    }
}

/// Exhaustive small-model checking (crate `byzclock-mcheck`): machine-
/// verifies closure and convergence of the real protocol cores at tiny
/// parameters and prints one verdict line per model (two for
/// `clock-sync`: the layer-A 4-clock and the layer-B top layer).
/// `bd-clock` checks window 2 — the bounded-delay operating regime — by
/// default; `--window=1` opts into the degenerate every-beat-expires
/// configuration whose split-tag convergence trap the checker
/// documented (see ARCHITECTURE.md's model-checking seam). Exits
/// nonzero on any violation; an exploration truncated by `--max-states`
/// reports INCOMPLETE but does not fail (CI smokes under a state cap
/// and separately enforces recorded state-count floors). With `--jsonl`,
/// each verdict is a [`RunReport`] JSON line (violations emit a second
/// line carrying the minimal counterexample trace).
fn run_model_check(rest: &[String], jsonl: bool) {
    use byzclock::mcheck::{
        check, BdModel, CheckReport, FourClockModel, TopLayerModel, TwoClockModel, MODEL_NAMES,
    };

    let usage = || -> ! {
        eprintln!(
            "usage: experiments [--jsonl] model-check [{}|all] [--window=1|2] [--max-states=N]",
            MODEL_NAMES.join("|")
        );
        std::process::exit(2);
    };
    let mut target: Option<String> = None;
    let mut max_states: Option<usize> = None;
    let mut window: Option<u64> = None;
    for arg in rest {
        if let Some(v) = arg.strip_prefix("--max-states=") {
            max_states = Some(v.parse().unwrap_or_else(|_| usage()));
        } else if let Some(v) = arg.strip_prefix("--window=") {
            window = match v.parse() {
                Ok(w @ 1..=2) => Some(w),
                _ => usage(),
            };
        } else if target.is_none() && (MODEL_NAMES.contains(&arg.as_str()) || arg == "all") {
            target = Some(arg.clone());
        } else {
            usage();
        }
    }
    let target = target.unwrap_or_else(|| "all".to_string());
    let wants = |name: &str| target == name || target == "all";
    // Default caps: every menu that completes does so well under 2^19
    // states (bd-clock window=1 fully explores at 304,374). The bd-clock
    // window=2 space exceeds 2M canonical states — its default run is a
    // ~30s capped sweep; raise --max-states (and budget tens of GB) to
    // push the frontier.
    let lockstep_cap = max_states.unwrap_or(1 << 19);
    let bd_cap = max_states.unwrap_or(if window == Some(1) { 1 << 19 } else { 1 << 17 });

    let mut violated = false;
    let mut show = |report: CheckReport, secs: f64| {
        if jsonl {
            println!("{}", report.to_report().to_json());
            if let Some(v) = &report.violation {
                println!("{}", v.trace.to_report().to_json());
            }
        } else {
            let verdict = if report.verified() {
                "verified".to_string()
            } else if let Some(v) = &report.violation {
                format!("VIOLATION({})", v.kind)
            } else {
                "INCOMPLETE (raise --max-states)".to_string()
            };
            let worst = if report.max_rank == byzclock::mcheck::RANK_INF {
                "inf".to_string()
            } else {
                report.max_rank_beats.to_string()
            };
            println!(
                "{}: {} states={} edges={} synced={} persistent={} worst={}b bound={}b [{:.1}s]",
                report.model,
                verdict,
                report.states,
                report.edges,
                report.synced_states,
                report.persistent_states,
                worst,
                report.bound_beats,
                secs
            );
            if let Some(v) = &report.violation {
                println!("  {}", v.detail);
                for line in v.trace.to_string().lines() {
                    println!("  {line}");
                }
            }
        }
        violated |= report.violation.is_some();
    };
    if wants("two-clock") {
        let t0 = std::time::Instant::now();
        let r = check(&TwoClockModel::honest(4, 1), lockstep_cap);
        show(r, t0.elapsed().as_secs_f64());
    }
    if wants("clock-sync") {
        let t0 = std::time::Instant::now();
        let r = check(&FourClockModel::new(), lockstep_cap);
        show(r, t0.elapsed().as_secs_f64());
        let t0 = std::time::Instant::now();
        let r = check(&TopLayerModel::new(), lockstep_cap);
        show(r, t0.elapsed().as_secs_f64());
    }
    if wants("bd-clock") {
        let t0 = std::time::Instant::now();
        let r = check(&BdModel::new(window.unwrap_or(2)), bd_cap);
        show(r, t0.elapsed().as_secs_f64());
    }
    if violated {
        std::process::exit(1);
    }
}

/// `experiments lint [--rule=ID]`: runs the `byzclock-lint` invariant
/// pass over the workspace (the static half of the machine-checking
/// story — `model-check` is the dynamic half). One verdict line per
/// rule, one diagnostic line per unsuppressed finding, exit 1 when the
/// workspace is not clean. With `--jsonl` each verdict is a
/// [`RunReport`] line (`spec: "lint rule=D1 files=N"`, `beats` carrying
/// the finding count) and each finding rides the same rails with its
/// `file=`/`line=` packed into the spec string, so CI greps one format.
fn run_lint(rest: &[String], jsonl: bool) {
    use byzclock::lint::{workspace_root, RULES};

    let usage = || -> ! {
        eprintln!(
            "usage: experiments [--jsonl] lint [--rule={}]",
            RULES.join("|")
        );
        std::process::exit(2);
    };
    let mut rule: Option<String> = None;
    for arg in rest {
        if let Some(v) = arg.strip_prefix("--rule=") {
            rule = Some(v.to_string());
        } else {
            usage();
        }
    }
    let Some(root) = workspace_root() else {
        eprintln!("no lint.toml found above the current directory");
        std::process::exit(2);
    };
    let report = byzclock::lint::run(&root, rule.as_deref()).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    for r in &report.results {
        if jsonl {
            let verdict = RunReport {
                spec: format!("lint rule={} files={}", r.rule, report.files),
                beats: r.findings.len() as u64,
                converged_at: r.findings.is_empty().then_some(0),
                measured_from: 0,
                final_clocks: Vec::new(),
                final_streak: 0,
                traffic: Default::default(),
                extras: vec![
                    ("findings".to_string(), r.findings.len() as f64),
                    ("suppressed".to_string(), r.suppressed as f64),
                ],
            };
            println!("{}", verdict.to_json());
            for f in &r.findings {
                let diag = RunReport {
                    spec: format!(
                        "lint finding rule={} file={} line={} message={}",
                        f.rule, f.file, f.line, f.message
                    ),
                    beats: u64::from(f.line),
                    converged_at: None,
                    measured_from: 0,
                    final_clocks: Vec::new(),
                    final_streak: 0,
                    traffic: Default::default(),
                    extras: Vec::new(),
                };
                println!("{}", diag.to_json());
            }
        } else {
            println!(
                "{}: {} finding(s), {} suppressed ({} files)",
                r.rule,
                r.findings.len(),
                r.suppressed,
                report.files
            );
            for f in &r.findings {
                println!("  {f}");
            }
        }
    }
    if !report.clean() {
        std::process::exit(1);
    }
}

/// Convergence-beat samples over seeded trials of one spec (the seed field
/// of the spec is replaced by the trial index).
fn samples(registry: &ProtocolRegistry, spec: &ScenarioSpec, ntrials: u64) -> Vec<Option<u64>> {
    parallel_trials(ntrials, default_threads(), |seed| {
        registry
            .run(&spec.clone().with_seed(seed))
            .unwrap_or_else(|e| panic!("spec `{spec}` failed: {e}"))
            .beats_to_sync()
    })
}

/// One full-budget (steady-state) report for a spec.
fn exact(registry: &ProtocolRegistry, spec: &ScenarioSpec) -> RunReport {
    registry
        .run_exact(spec)
        .unwrap_or_else(|e| panic!("spec `{spec}` failed: {e}"))
}

// ---------------------------------------------------------------------------
// T1: Table 1
// ---------------------------------------------------------------------------

fn t1_table_1() {
    println!("## T1 — Table 1: convergence beats (measured) by algorithm and n\n");
    println!(
        "k = 8; f = ⌊(n−1)/3⌋ (⌊(n−1)/4⌋ for [15]-queen); corrupted starts; silent\n\
         Byzantine nodes (adversarial stress is measured in R1/A1). Cells:\n\
         mean beats (p95) over trials.\n"
    );
    let registry = default_registry();
    let ns = [4usize, 7, 10, 13];
    let mut rows: Vec<Vec<String>> = Vec::new();

    struct Row {
        label: &'static str,
        protocol: &'static str,
        coin: CoinSpec,
        f_of: fn(usize) -> usize,
        horizon: u64,
        ntrials: u64,
    }
    let spec_rows = [
        Row {
            label: "[10] probabilistic, local coins (O(2^{2(n-f)}))",
            protocol: "dw-clock",
            coin: CoinSpec::Local,
            f_of: |n| (n - 1) / 3,
            horizon: 300_000,
            ntrials: trials(10).min(10),
        },
        Row {
            label: "[15] deterministic queen (O(f), f<n/4)",
            protocol: "queen-clock",
            coin: CoinSpec::None,
            f_of: |n| (n - 1) / 4,
            horizon: 5_000,
            ntrials: trials(20),
        },
        Row {
            label: "[7] deterministic phase-king (O(f), f<n/3)",
            protocol: "pk-clock",
            coin: CoinSpec::None,
            f_of: |n| (n - 1) / 3,
            horizon: 5_000,
            ntrials: trials(20),
        },
        Row {
            label: "**current** ss-Byz-Clock-Sync (expected O(1), f<n/3)",
            protocol: "clock-sync",
            coin: CoinSpec::Ticket,
            f_of: |n| (n - 1) / 3,
            horizon: 5_000,
            ntrials: trials(20),
        },
    ];

    for row in &spec_rows {
        let mut cells = vec![row.label.to_string()];
        for &n in &ns {
            let f = (row.f_of)(n);
            if f == 0 {
                cells.push("f=0 (n too small)".to_string());
                continue;
            }
            let spec = ScenarioSpec::new(row.protocol, n, f)
                .with_coin(row.coin)
                .with_faults(FaultPlanSpec::corrupt_start())
                .with_budget(row.horizon);
            let s = samples(&registry, &spec, row.ntrials);
            cells.push(Summary::of(&s).cell(row.horizon));
        }
        rows.push(cells);
    }

    let headers: Vec<String> = std::iter::once("algorithm".to_string())
        .chain(ns.iter().map(|n| format!("n={n}")))
        .collect();
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    println!("{}", md_table(&headers_ref, &rows));
    println!(
        "Semi-synchronous rows of Table 1 (analytic, different network model —\n\
         bounded-delay is this paper's future work, §6.3):\n\
         [10] semi-sync probabilistic: O(n^(6(n-f))), f<n/3;\n\
         [6,5] semi-sync deterministic: O(f), f<n/3.\n"
    );
}

// ---------------------------------------------------------------------------
// F1: Fig. 1 contract — the pipelined coin
// ---------------------------------------------------------------------------

fn f1_coin_contract() {
    println!("## F1 — Fig. 1 contract: ss-Byz-Coin-Flip quality (p0 / p1 / safe-beat rate)\n");
    let registry = default_registry();
    let beats = 40 * trials(1).clamp(1, 10);
    let columns: [(&str, CoinSpec, AdversarySpec); 5] = [
        ("ticket / silent", CoinSpec::Ticket, AdversarySpec::Silent),
        (
            "ticket / noise",
            CoinSpec::Ticket,
            AdversarySpec::CoinNoise { depth: 4 },
        ),
        (
            "ticket / bad dealer",
            CoinSpec::Ticket,
            AdversarySpec::InconsistentDealer,
        ),
        (
            "ticket / recover-equiv",
            CoinSpec::Ticket,
            AdversarySpec::RecoverEquivocator { slot: 3 },
        ),
        (
            "XOR / recover-equiv",
            CoinSpec::Xor,
            AdversarySpec::RecoverEquivocator { slot: 3 },
        ),
    ];
    let mut rows = Vec::new();
    for (i, &n) in [4usize, 7, 10].iter().enumerate() {
        let f = (n - 1) / 3;
        let mut cells = vec![format!("n={n}, f={f}")];
        for (j, (_, coin, adversary)) in columns.iter().enumerate() {
            let spec = ScenarioSpec::new("coin-stream", n, f)
                .with_coin(*coin)
                .with_adversary(*adversary)
                .with_faults(FaultPlanSpec::none())
                .with_metrics(MetricsSpec::Decode)
                .with_seed((i * columns.len() + j) as u64 + 1)
                .with_budget(beats);
            let report = exact(&registry, &spec);
            cells.push(format!(
                "p0={:.2} p1={:.2} agree={:.2} b\u{304}={:.0}",
                report.extra("p0").unwrap_or(f64::NAN),
                report.extra("p1").unwrap_or(f64::NAN),
                report.extra("agreement_rate").unwrap_or(f64::NAN),
                report.extra("decode_mean_batch").unwrap_or(f64::NAN),
            ));
        }
        rows.push(cells);
    }
    let headers: Vec<&str> = std::iter::once("cluster")
        .chain(columns.iter().map(|(h, _, _)| *h))
        .collect();
    println!("{}", md_table(&headers, &rows));
    println!(
        "Contract: p0 and p1 are bounded away from 0 under every adversary\n\
         (Def. 2.6/2.7); honest ticket-coin frequencies follow the FM lottery\n\
         (p0 ~ 1-(1-1/n)^n, p1 ~ (1-1/n)^n). b\u{304} is the mean recover-round\n\
         decode batch size (codewords per factored elimination, via\n\
         metrics=decode).\n"
    );
}

// ---------------------------------------------------------------------------
// F2: Fig. 2 contract — 2-clock convergence law and tail
// ---------------------------------------------------------------------------

fn f2_two_clock_contract() {
    println!("## F2 — Fig. 2 contract: ss-Byz-2-Clock convergence vs coin quality\n");
    println!(
        "n=7, f=2, splitter adversary, oracle coin with P[safe beat] = c1\n\
         (split beats are adversarial). Theorem 2 predicts expected beats\n\
         = O(1/(c2*c1^2)) with c2 = min(p0,p1) = c1/2.\n"
    );
    let registry = default_registry();
    let ntrials = trials(60);
    let horizon = 20_000u64;
    let mut rows = Vec::new();
    for &c1 in &[1.0f64, 0.8, 0.5, 0.3] {
        let spec = ScenarioSpec::new("two-clock", 7, 2)
            .with_coin(CoinSpec::oracle(c1 / 2.0, c1 / 2.0))
            .with_adversary(AdversarySpec::SplitVote)
            .with_faults(FaultPlanSpec::corrupt_start())
            .with_budget(horizon);
        let s = Summary::of(&samples(&registry, &spec, ntrials));
        let analytic = 1.0 / ((c1 / 2.0) * c1 * c1);
        rows.push(vec![
            format!("{c1:.1}"),
            s.cell(horizon),
            format!("{analytic:.1}"),
        ]);
    }
    println!(
        "{}",
        md_table(
            &[
                "c1 = p0+p1",
                "measured beats mean (p95)",
                "analytic 1/(c2*c1^2)"
            ],
            &rows
        )
    );

    // Geometric tail (Remark 3.2): P[T > l] decays exponentially.
    println!("Tail of the convergence time (perfect coin, splitter adversary):\n");
    let spec = ScenarioSpec::new("two-clock", 7, 2)
        .with_coin(CoinSpec::perfect_oracle())
        .with_adversary(AdversarySpec::SplitVote)
        .with_faults(FaultPlanSpec::corrupt_start())
        .with_budget(2_000);
    let tail_samples = samples(&registry, &spec, trials(400));
    let total = tail_samples.len() as f64;
    let mut rows = Vec::new();
    for l in [2u64, 4, 8, 16, 32, 64] {
        let exceed = tail_samples
            .iter()
            .filter(|s| s.is_none_or(|t| t > l))
            .count();
        rows.push(vec![
            format!("{l}"),
            format!("{:.3}", exceed as f64 / total),
        ]);
    }
    println!("{}", md_table(&["l (beats)", "P[T > l]"], &rows));
}

// ---------------------------------------------------------------------------
// F3: Fig. 3 contract — 4-clock
// ---------------------------------------------------------------------------

fn f3_four_clock_contract() {
    println!("## F3 — Fig. 3 contract: ss-Byz-4-Clock (GVSS ticket coin)\n");
    let registry = default_registry();
    let horizon = 3_000u64;
    let spec = ScenarioSpec::new("four-clock", 7, 2)
        .with_coin(CoinSpec::Ticket)
        .with_faults(FaultPlanSpec::corrupt_start())
        .with_budget(horizon);
    let s = Summary::of(&samples(&registry, &spec, trials(30)));
    println!("convergence (n=7, f=2): {}\n", s.cell(horizon));

    // A2 step ratio after convergence (Theorem 3's every-other-beat gate):
    // drive the same spec to convergence, then 200 more beats, comparing
    // the gate metric the family reports through the extras.
    let probe = spec.clone().with_seed(5).with_faults(FaultPlanSpec::none());
    let mut run = registry.start(&probe).expect("four-clock spec resolves");
    let at_sync = byzclock::scenario::drive(run.as_mut(), &probe, 8);
    let before = at_sync.extra("a2_step_ratio").unwrap_or(f64::NAN);
    for _ in 0..200 {
        run.step();
    }
    let after = run
        .extras()
        .iter()
        .find(|(n, _)| n == "a2_step_ratio")
        .map_or(f64::NAN, |&(_, v)| v);
    println!(
        "A2 step ratio drifts to 1/2 after convergence: at convergence {before:.3}, +200 beats {after:.3}\n",
    );
}

// ---------------------------------------------------------------------------
// F4: Fig. 4 contract — k-independence
// ---------------------------------------------------------------------------

fn f4_k_clock_contract() {
    println!("## F4 — Fig. 4 contract: convergence vs k (n=7, f=2)\n");
    println!(
        "ss-Byz-Clock-Sync is flat in k (Theorem 4); the paragraph-5\n\
         recursive doubling grows with log k; Dolev–Welch blows up with k.\n\
         Oracle coins isolate k-scaling from coin cost; DW uses local coins.\n"
    );
    let registry = default_registry();
    let ntrials = trials(30);
    let mut rows = Vec::new();
    for &k in &[4u64, 16, 64, 256, 1024] {
        let horizon_cs = 5_000u64;
        let cs = samples(
            &registry,
            &ScenarioSpec::new("clock-sync", 7, 2)
                .with_modulus(k)
                .with_coin(CoinSpec::perfect_oracle())
                .with_faults(FaultPlanSpec::corrupt_start())
                .with_budget(horizon_cs),
            ntrials,
        );
        let levels = (k as f64).log2().ceil() as usize;
        let horizon_rec = 20_000u64;
        let rec = samples(
            &registry,
            &ScenarioSpec::new("recursive", 7, 2)
                .with_modulus(k)
                .with_coin(CoinSpec::perfect_oracle())
                .with_faults(FaultPlanSpec::corrupt_start())
                .with_budget(horizon_rec),
            ntrials,
        );
        let horizon_dw = 300_000u64;
        let dw = samples(
            &registry,
            &ScenarioSpec::new("dw-clock", 7, 2)
                .with_modulus(k)
                .with_coin(CoinSpec::Local)
                .with_faults(FaultPlanSpec::corrupt_start())
                .with_budget(horizon_dw),
            ntrials.min(10),
        );
        rows.push(vec![
            format!("{k}"),
            Summary::of(&cs).cell(horizon_cs),
            format!("{} (levels={levels})", Summary::of(&rec).cell(horizon_rec)),
            Summary::of(&dw).cell(horizon_dw),
        ]);
    }
    println!(
        "{}",
        md_table(
            &[
                "k",
                "ss-Byz-Clock-Sync",
                "sec. 5 recursive doubling",
                "Dolev–Welch local-coin"
            ],
            &rows
        )
    );
}

// ---------------------------------------------------------------------------
// A1: Remark 3.1 ablation
// ---------------------------------------------------------------------------

fn a1_broken_rand_ablation() {
    println!("## A1 — Remark 3.1 ablation: sender-side substitution is exploitable\n");
    println!(
        "Both clocks run over a perfect beacon; the adversary holds a beacon\n\
         handle (= rushing knowledge of the coin). The correct 2-clock\n\
         shrugs it off; the broken variant (senders substitute *yesterday's*\n\
         bit) lets the adversary steer vote counts with full knowledge.\n"
    );
    let registry = default_registry();
    let ntrials = trials(60);
    let horizon = 5_000u64;
    let mut rows = Vec::new();
    for (label, protocol) in [
        ("ss-Byz-2-Clock (correct)", "two-clock"),
        ("broken variant (Remark 3.1)", "broken-two-clock"),
    ] {
        let spec = ScenarioSpec::new(protocol, 7, 2)
            .with_coin(CoinSpec::perfect_oracle())
            .with_adversary(AdversarySpec::RandAwareSplitter)
            .with_faults(FaultPlanSpec::corrupt_start())
            .with_budget(horizon);
        let s = Summary::of(&samples(&registry, &spec, ntrials));
        rows.push(vec![label.to_string(), s.cell(horizon)]);
    }
    println!(
        "{}",
        md_table(&["protocol", "convergence beats (n=7, f=2)"], &rows)
    );
}

// ---------------------------------------------------------------------------
// A2: Remark 4.1 ablation — shared coin pipeline
// ---------------------------------------------------------------------------

fn a2_shared_pipeline_ablation() {
    println!("## A2 — Remark 4.1 ablation: per-sub-clock pipelines vs one shared pipeline\n");
    let registry = default_registry();
    let ntrials = trials(20);
    let horizon = 3_000u64;
    let mut rows = Vec::new();
    for (label, protocol) in [
        ("two pipelines (paper)", "four-clock"),
        ("shared pipeline (Remark 4.1)", "shared-four-clock"),
    ] {
        let converge_spec = ScenarioSpec::new(protocol, 7, 2)
            .with_coin(CoinSpec::Ticket)
            .with_faults(FaultPlanSpec::corrupt_start())
            .with_budget(horizon);
        let s = Summary::of(&samples(&registry, &converge_spec, ntrials));
        // Traffic: steady state over exactly 100 beats, clean boot.
        let traffic_spec = ScenarioSpec::new(protocol, 7, 2)
            .with_coin(CoinSpec::Ticket)
            .with_faults(FaultPlanSpec::none())
            .with_seed(1)
            .with_budget(100);
        let t = exact(&registry, &traffic_spec).traffic;
        rows.push(vec![
            label.to_string(),
            s.cell(horizon),
            format!("{:.0}", t.mean_correct_msgs_per_beat),
            format!("{:.0}", t.mean_correct_bytes_per_beat),
        ]);
    }
    println!(
        "{}",
        md_table(
            &["variant", "convergence beats", "msgs/beat", "bytes/beat"],
            &rows
        )
    );
}

// ---------------------------------------------------------------------------
// R1: resiliency boundary
// ---------------------------------------------------------------------------

fn r1_resiliency_boundary() {
    println!("## R1 — resiliency boundary (f < n/3 optimality; f < n/4 for the queen)\n");
    let registry = default_registry();
    let ntrials = trials(20);
    let horizon = 2_000u64;
    let rate = |samples: &[Option<u64>]| {
        let ok = samples.iter().filter(|s| s.is_some()).count();
        format!("{}/{} converged", ok, samples.len())
    };
    let cs_spec = |n: usize, f: usize| {
        ScenarioSpec::new("clock-sync", n, f)
            .with_modulus(8)
            .with_coin(CoinSpec::perfect_oracle())
            .with_adversary(AdversarySpec::SplitVote)
            .with_faults(FaultPlanSpec::corrupt_start())
            .with_budget(horizon)
    };
    let legal = samples(&registry, &cs_spec(7, 2), ntrials); // 2 < 7/3
    let boundary = samples(&registry, &cs_spec(6, 2), ntrials); // 2 = 6/3
                                                                // Queen clock under an equivocating Byzantine queen, within budget.
    let queen_spec = ScenarioSpec::new("queen-clock", 5, 1)
        .with_modulus(8)
        .with_coin(CoinSpec::None)
        .with_adversary(AdversarySpec::BaEquivocator { mixed_bits: false })
        .with_byzantine([0])
        .with_faults(FaultPlanSpec::corrupt_start())
        .with_budget(horizon);
    let queen_legal = samples(&registry, &queen_spec, ntrials);
    let rows = vec![
        vec![
            "ss-Byz-Clock-Sync n=7, f=2 + splitter (legal)".into(),
            rate(&legal),
        ],
        vec![
            "ss-Byz-Clock-Sync n=6, f=2 + splitter (f = n/3)".into(),
            rate(&boundary),
        ],
        vec![
            "queen clock n=5, f=1 + equivocating queen (legal)".into(),
            rate(&queen_legal),
        ],
    ];
    println!(
        "{}",
        md_table(&["configuration", "success within horizon"], &rows)
    );
    println!(
        "Queen boundary (f = n/4): in the *clock*, consensus validity shields an\n\
         already-unanimous steady state, so the violation shows up in one-shot\n\
         agreement from mixed inputs: the deterministic schedule in\n\
         `byzclock-baselines::consensus` test `queen_agreement_breaks_at_n_equals_4f...`\n\
         splits the queen protocol's outputs [0, 1, 1] at n=4, f=1 while the\n\
         phase-king protocol (n > 3f) stays in agreement under the same lies.\n"
    );
}

// ---------------------------------------------------------------------------
// S1: self-stabilization
// ---------------------------------------------------------------------------

fn s1_self_stabilization() {
    println!("## S1 — self-stabilization: recovery after transient memory corruption\n");
    println!(
        "Full GVSS stack (n=7, f=2, k=64). At beat 60: every correct node's\n\
         memory is scrambled and 100 phantom messages are replayed. Recovery\n\
         time is measured from the fault and compared with a fresh start.\n"
    );
    let registry = default_registry();
    let ntrials = trials(30);
    let horizon = 3_000u64;
    let base = ScenarioSpec::new("clock-sync", 7, 2)
        .with_modulus(64)
        .with_coin(CoinSpec::Ticket);
    let fresh = samples(
        &registry,
        &base
            .clone()
            .with_faults(FaultPlanSpec::corrupt_start())
            .with_budget(horizon),
        ntrials,
    );
    // beats_to_sync counts from the end of the beat-60 storm automatically.
    let recovery = samples(
        &registry,
        &base
            .clone()
            .with_faults(FaultPlanSpec::storm(60, 100))
            .with_budget(61 + horizon),
        ntrials,
    );
    let rows = vec![
        vec![
            "fresh start (corrupted init)".to_string(),
            Summary::of(&fresh).cell(horizon),
        ],
        vec![
            "post-fault recovery (beats after fault)".to_string(),
            Summary::of(&recovery).cell(horizon),
        ],
    ];
    println!("{}", md_table(&["scenario", "beats to stable sync"], &rows));
}

// ---------------------------------------------------------------------------
// M1: message complexity
// ---------------------------------------------------------------------------

fn m1_message_complexity(grid: GridOutput<'_>) {
    let registry = default_registry();
    let columns: [(&str, &str, CoinSpec); 4] = [
        ("ClockSync (GVSS ticket)", "clock-sync", CoinSpec::Ticket),
        ("Recursive x6 levels", "recursive", CoinSpec::Ticket),
        ("PkClock (O(f) pipeline)", "pk-clock", CoinSpec::None),
        ("DwClock", "dw-clock", CoinSpec::Local),
    ];
    // One flat grid in cell order — per n, per column: the fixed-wire
    // spec then its packed-wire twin. Every cell is a full-budget
    // (steady-state) run, so the sweep carries `exact`.
    let ns = [4usize, 7, 10, 13];
    let mut specs = Vec::new();
    for &n in &ns {
        let f = (n - 1) / 3;
        for (_, protocol, coin) in &columns {
            let spec = ScenarioSpec::new(*protocol, n, f)
                .with_modulus(64)
                .with_coin(*coin)
                .with_faults(FaultPlanSpec::none())
                .with_seed(1)
                .with_budget(50);
            specs.push(spec.clone());
            specs.push(spec.with_wire(WireSpec::Packed));
        }
    }
    let reports = sweep_specs(&registry, &specs, grid.backend, &grid.sweep_options(true));

    if grid.jsonl {
        for (spec, report) in specs.iter().zip(&reports) {
            match report {
                Ok(r) => println!("{}", r.to_json()),
                Err(e) => {
                    eprintln!("spec `{spec}` failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        return;
    }

    println!("## M1 — message complexity per beat (correct senders, k = 64)\n");
    println!(
        "Cells: msgs / fixed-wire bytes / packed-wire bytes (packed gain).\n\
         The packed format prices field elements at their minimal width and\n\
         presence vectors as bitsets (`wire=packed`); message counts and\n\
         protocol behavior are identical between the two encodings.\n"
    );
    let mut rows = Vec::new();
    let mut cells_iter = reports.chunks(2);
    for &n in &ns {
        let f = (n - 1) / 3;
        let mut cells = vec![format!("n={n}, f={f}")];
        for _ in &columns {
            let pair = cells_iter.next().expect("grid shape");
            let [fixed, packed] = [&pair[0], &pair[1]].map(|r| {
                &r.as_ref()
                    .unwrap_or_else(|e| panic!("m1 spec failed: {e}"))
                    .traffic
            });
            cells.push(format!(
                "{:.0} / {:.0} / {:.0} ({:.1}x)",
                fixed.mean_correct_msgs_per_beat,
                fixed.mean_correct_bytes_per_beat,
                packed.mean_correct_bytes_per_beat,
                fixed.mean_correct_bytes_per_beat / packed.mean_correct_bytes_per_beat
            ));
        }
        rows.push(cells);
    }
    let headers: Vec<&str> = std::iter::once("cluster")
        .chain(columns.iter().map(|(h, _, _)| *h))
        .collect();
    println!("{}", md_table(&headers, &rows));
    println!(
        "Shape check: ClockSync's overhead over the 4-clock is a constant\n\
         (one extra broadcast + one coin pipeline); the recursive clock pays\n\
         log k pipelines; PkClock pays an O(f)-deep pipeline. The packed\n\
         gain concentrates where the GVSS matrices are (ticket columns) —\n\
         the scalar-message baselines barely move.\n"
    );
}

// ---------------------------------------------------------------------------
// M2: beats/sec × n throughput curve
// ---------------------------------------------------------------------------

fn m2_beat_rate_grid(grid: GridOutput<'_>, default_cap: usize) {
    let registry = default_registry();
    // (header, protocol, coin, committee-subsampled?) — the committee
    // column runs the same clock-sync protocol over the subsampled coin
    // (`committee=default_committee_size(n)`), so the gap to the full
    // GVSS column is exactly the price of dealing to everyone.
    let columns: [(&str, &str, CoinSpec, bool); 4] = [
        (
            "ClockSync (GVSS ticket)",
            "clock-sync",
            CoinSpec::Ticket,
            false,
        ),
        (
            "ClockSync (committee ticket)",
            "clock-sync",
            CoinSpec::Ticket,
            true,
        ),
        (
            "Coin stream (GVSS ticket)",
            "coin-stream",
            CoinSpec::Ticket,
            false,
        ),
        (
            "ClockSync (oracle coin)",
            "clock-sync",
            CoinSpec::perfect_oracle(),
            false,
        ),
    ];
    let max_n = m2_max_n(default_cap);
    let ns: Vec<usize> = [7usize, 13, 32, 64, 128, 256, 512]
        .into_iter()
        .filter(|&n| n <= max_n)
        .collect();
    // Exact beat budgets: every budget clears the ticket pipeline's
    // 4-beat depth, so the steady-state round mix (share + echo + vote +
    // recover in flight simultaneously) is what gets priced; beyond
    // that, the big cells run the fewest beats that still average out
    // per-beat jitter, because their ~n⁴ per-beat cost dominates the
    // grid's wall-clock.
    let budget = |n: usize| -> u64 {
        match n {
            0..=13 => 50,
            14..=32 => 24,
            33..=64 => 12,
            65..=128 => 6,
            _ => 5,
        }
    };
    // One flat grid in cell order. The full-coin cells stop where their
    // ~n⁴ per-beat cost would dominate the grid's wall-clock for one
    // data point (clock-sync drives three coin pipelines per node and
    // stops at n=128; the standalone coin stream stops at n=256). The
    // committee and oracle columns are the cheap ones — they carry the
    // curve to n=512. Committee cells run a 5-round pipeline and a
    // rotation schedule, so they always get enough beats to price the
    // steady-state mix across several committees.
    let mut specs = Vec::new();
    let mut cells: Vec<(usize, usize)> = Vec::new(); // (n, column index)
    for &n in &ns {
        let f = (n - 1) / 3;
        for (ci, (_, protocol, coin, committee)) in columns.iter().enumerate() {
            let c = default_committee_size(n);
            if *committee && c >= n {
                // committee=n IS the full coin; skip the duplicate cell.
                continue;
            }
            if !*committee && *protocol == "clock-sync" && n > 128 {
                continue;
            }
            if *protocol == "coin-stream" && n > 256 {
                continue;
            }
            let mut spec = ScenarioSpec::new(*protocol, n, f)
                .with_coin(*coin)
                .with_faults(FaultPlanSpec::none())
                .with_seed(1)
                .with_budget(if *committee {
                    budget(n).max(24)
                } else {
                    budget(n)
                });
            if *committee {
                spec = spec.with_committee(c);
            }
            if *protocol == "clock-sync" {
                spec = spec.with_modulus(64);
            }
            specs.push(spec);
            cells.push((n, ci));
        }
    }
    let results = sweep_specs_timed(&registry, &specs, grid.backend, &grid.sweep_options(true));

    // The committee family's headline number: the least-squares
    // power-law exponent of its bytes/beat curve. The full coin is
    // ~n⁴ here; with c(n) = Θ(√n) the committee's Θ(c⁴ + n·c) traffic
    // is ~n², and anything ≥ 3 means the subsampling seam regressed.
    // Asserted in both output modes, so the CI --jsonl slice enforces it.
    let committee_points: Vec<(f64, f64)> = cells
        .iter()
        .zip(&results)
        .filter(|((n, ci), _)| columns[*ci].3 && *n >= 32)
        .filter_map(|((n, _), (report, _))| {
            report
                .as_ref()
                .ok()
                .map(|r| (*n as f64, r.traffic.mean_correct_bytes_per_beat))
        })
        .collect();
    let committee_fit = (committee_points.len() >= 2).then(|| {
        let fitted = power_law_exponent(&committee_points);
        assert!(
            fitted < 3.0,
            "committee bytes/beat exponent {fitted:.2} >= 3 — the subsampled \
             coin no longer breaks the n\u{2074} wall"
        );
        fitted
    });

    if grid.jsonl {
        for (spec, (report, _)) in specs.iter().zip(&results) {
            match report {
                Ok(r) => println!("{}", r.to_json()),
                Err(e) => {
                    eprintln!("spec `{spec}` failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        return;
    }

    println!("## M2 — simulated beats/sec by cluster size (exact budgets, k = 64)\n");
    println!(
        "Cells: beats/sec / bytes per beat (correct senders). Rates are\n\
         coordinator wall-clock over full-budget runs, so concurrent cells\n\
         share the machine — read them as scaling shape, not single-run\n\
         peaks. Manifest-served cells did not run and show `cached`.\n\
         Full-coin clock-sync stops at n=128 (three GVSS pipelines per\n\
         node) and the full coin stream at n=256; the committee column\n\
         (`committee=c(n)`, c(n) = smallest c ≡ 1 mod 3 with\n\
         c ≥ max(7, 1.5·√n)) carries the curve to n=512 and always runs\n\
         ≥ 24 beats so the 5-round pipeline and the rotation schedule are\n\
         priced at steady state. `BYZCLOCK_M2_MAX_N` caps the grid (CI\n\
         runs the 128 slice).\n"
    );
    let mut rows = Vec::new();
    let mut it = cells.iter().zip(&results).peekable();
    for &n in &ns {
        let f = (n - 1) / 3;
        let mut row = vec![format!("n={n}, f={f} ({} beats)", budget(n))];
        for ci in 0..columns.len() {
            let cell = match it.peek() {
                Some(((cn, cc), _)) if *cn == n && *cc == ci => {
                    let (_, (report, elapsed)) = it.next().expect("peeked");
                    let report = report
                        .as_ref()
                        .unwrap_or_else(|e| panic!("m2 spec failed: {e}"));
                    let bytes = report.traffic.mean_correct_bytes_per_beat;
                    match elapsed {
                        Some(wall) => {
                            let rate = report.beats as f64 / wall.as_secs_f64().max(1e-9);
                            format!("{rate:.1} beats/s / {bytes:.0} B")
                        }
                        None => format!("cached / {bytes:.0} B"),
                    }
                }
                _ => "–".to_string(),
            };
            row.push(cell);
        }
        rows.push(row);
    }
    let headers: Vec<&str> = std::iter::once("cluster")
        .chain(columns.iter().map(|(h, _, _, _)| *h))
        .collect();
    println!("{}", md_table(&headers, &rows));
    if let Some(fitted) = committee_fit {
        let span = format!(
            "n \u{2208} {{{}..{}}}",
            committee_points[0].0 as usize,
            committee_points[committee_points.len() - 1].0 as usize
        );
        println!(
            "Committee bytes/beat fit over {span}: bytes/beat ~ n^{fitted:.2}\n\
             (sub-quartic target: exponent < 3; the full coin grows ~n\u{2074}).\n"
        );
    }
    println!(
        "Shape check: the oracle column isolates the simulator + clock\n\
         layer (no GVSS algebra), so the gap between it and the ticket\n\
         column is the per-beat price of three real coin pipelines. The\n\
         full-GVSS columns decay ~n³ in rate (n² messages × O(n) share\n\
         handling) while the committee column stays ~n·c in messages; the\n\
         in-beat parallel stepping (`BYZCLOCK_STEP_THREADS`) divides the\n\
         wall-clock without changing any report byte.\n"
    );
}

/// Shared scaffolding of the lockstep-vs-delay grids (D1/D2): fans every
/// `(row, delay, trial)` out as one spec through [`byzclock_bench::sweep`]
/// (flat, seed-ordered — the chunked aggregation below mirrors this build
/// order exactly), dumps one JSON line per report under `--jsonl`, or
/// renders the aggregated Markdown table. `annotate` appends a grid's
/// per-cell extras (D1: mean message delay; D2: the quorum/timeout
/// advancement split).
fn delay_grid(
    grid: GridOutput<'_>,
    name: &str,
    heading: &str,
    intro: &str,
    rows: &[(&str, ScenarioSpec)],
    annotate: impl Fn(&mut String, &[&RunReport], u64),
) {
    let registry = default_registry();
    let ntrials = trials(20);
    let horizon = rows
        .iter()
        .map(|(_, base)| base.beat_budget)
        .max()
        .unwrap_or(10_000);
    let delays: [u64; 4] = [0, 1, 2, 3];

    // One flat, seed-ordered grid: every (row, delay, trial) is a spec.
    let mut specs = Vec::new();
    for (_, base) in rows {
        for &delay in &delays {
            for seed in 0..ntrials {
                specs.push(base.clone().with_delay(delay).with_seed(seed));
            }
        }
    }
    let reports = sweep_specs(&registry, &specs, grid.backend, &grid.sweep_options(false));

    if grid.jsonl {
        // A missing grid point must not masquerade as a complete archive:
        // fail loudly, matching the Markdown path's panic on the same
        // error.
        for (spec, report) in specs.iter().zip(&reports) {
            match report {
                Ok(r) => println!("{}", r.to_json()),
                Err(e) => {
                    eprintln!("spec `{spec}` failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        return;
    }

    println!("{heading}\n");
    println!("{intro}\n");
    let mut table = Vec::new();
    let mut chunks = reports.chunks(ntrials as usize);
    for (label, _) in rows {
        let mut cells = vec![label.to_string()];
        for &delay in &delays {
            let chunk: Vec<&RunReport> = chunks
                .next()
                .expect("grid shape")
                .iter()
                .map(|r| {
                    r.as_ref()
                        .unwrap_or_else(|e| panic!("{name} spec failed: {e}"))
                })
                .collect();
            let samples: Vec<Option<u64>> = chunk.iter().map(|r| r.beats_to_sync()).collect();
            let mut cell = Summary::of(&samples).cell(horizon);
            annotate(&mut cell, &chunk, delay);
            cells.push(cell);
        }
        table.push(cells);
    }
    let headers: Vec<String> = std::iter::once("protocol".to_string())
        .chain(delays.iter().map(|d| {
            if *d == 0 {
                "lockstep".to_string()
            } else {
                format!("delay={d}")
            }
        }))
        .collect();
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    println!("{}", md_table(&headers_ref, &table));
}

// ---------------------------------------------------------------------------
// D1: §6.3 bounded-delay (semi-synchronous) grid
// ---------------------------------------------------------------------------

/// Lockstep vs bounded-delay sweep: the paper's protocols are specified
/// for the global beat system, so this grid *measures* how far each one
/// degrades when delivery stretches over a window — the §6.3 future-work
/// rows of Table 1 turned into runnable scenarios. Built on
/// [`byzclock_bench::sweep`]; `--jsonl` dumps every report as one JSON
/// line instead of the aggregated table.
fn d1_bounded_delay_grid(grid: GridOutput<'_>) {
    let horizon = 10_000u64;
    let rows = [
        (
            "2-clock (oracle, splitter)",
            ScenarioSpec::new("two-clock", 7, 2)
                .with_coin(CoinSpec::perfect_oracle())
                .with_adversary(AdversarySpec::SplitVote)
                .with_faults(FaultPlanSpec::corrupt_start())
                .with_budget(horizon),
        ),
        (
            "clock-sync k=8 (oracle, silent)",
            ScenarioSpec::new("clock-sync", 7, 2)
                .with_modulus(8)
                .with_coin(CoinSpec::perfect_oracle())
                .with_faults(FaultPlanSpec::corrupt_start())
                .with_budget(horizon),
        ),
        (
            "broken-2-clock (rand-aware splitter)",
            ScenarioSpec::new("broken-two-clock", 7, 2)
                .with_coin(CoinSpec::perfect_oracle())
                .with_adversary(AdversarySpec::RandAwareSplitter)
                .with_faults(FaultPlanSpec::corrupt_start())
                .with_budget(horizon),
        ),
    ];
    delay_grid(
        grid,
        "d1",
        "## D1 — \u{a7}6.3 bounded-delay grid: convergence vs delivery window",
        "delay=0 is the paper's lockstep beat; delay=d delivers each correct\n\
         message within a seeded d-beat window while the adversary rushes.\n\
         The protocols are *specified* for lockstep — this grid measures the\n\
         degradation the \u{a7}6.3 future work has to beat. Cells: mean beats\n\
         (p95) over trials; mean msg delay from the report extras.",
        &rows,
        |cell, chunk, delay| {
            if delay == 0 {
                return;
            }
            let mean_delay = chunk
                .iter()
                .filter_map(|r| r.extra("mean_delay"))
                .sum::<f64>()
                / chunk.len() as f64;
            cell.push_str(&format!(" \u{b7} d\u{304}={mean_delay:.2}"));
        },
    );
}

// ---------------------------------------------------------------------------
// D2: delay tolerance — bd-clock vs the lockstep protocols
// ---------------------------------------------------------------------------

/// The answer to D1's measured gap: the same lockstep-vs-delay sweep, with
/// the `bd-clock` (buffered round engine) rows added. The lockstep
/// protocols stop converging at `delay>=2`; `bd-clock` keeps a finite
/// convergence beat across the whole `delay=0..3` range, with extras
/// showing how its progress splits between quorum ticks and
/// timeout-driven merge events. Built on [`byzclock_bench::sweep`];
/// `--jsonl` dumps every report as one JSON line.
fn d2_delay_tolerance_grid(grid: GridOutput<'_>) {
    let horizon = 10_000u64;
    let rows = [
        (
            "2-clock (oracle, silent) — lockstep-specified",
            ScenarioSpec::new("two-clock", 7, 2)
                .with_coin(CoinSpec::perfect_oracle())
                .with_faults(FaultPlanSpec::corrupt_start())
                .with_budget(horizon),
        ),
        (
            "clock-sync k=8 (oracle, silent) — lockstep-specified",
            ScenarioSpec::new("clock-sync", 7, 2)
                .with_modulus(8)
                .with_coin(CoinSpec::perfect_oracle())
                .with_faults(FaultPlanSpec::corrupt_start())
                .with_budget(horizon),
        ),
        (
            "bd-clock k=8 (oracle, silent) — delay-tolerant",
            ScenarioSpec::new("bd-clock", 7, 2)
                .with_modulus(8)
                .with_coin(CoinSpec::perfect_oracle())
                .with_faults(FaultPlanSpec::corrupt_start())
                .with_budget(horizon),
        ),
        (
            "bd-clock k=8 (oracle, tag-equivocator)",
            ScenarioSpec::new("bd-clock", 7, 2)
                .with_modulus(8)
                .with_coin(CoinSpec::perfect_oracle())
                .with_adversary(AdversarySpec::Equivocate)
                .with_faults(FaultPlanSpec::corrupt_start())
                .with_budget(horizon),
        ),
    ];
    delay_grid(
        grid,
        "d2",
        "## D2 — delay tolerance: bd-clock closes the d1 grid gap",
        "Same sweep as D1 (corrupted starts, mean beats (p95) over trials),\n\
         with the buffered-round-engine clock added. Lockstep-specified\n\
         protocols stop converging at delay>=2; bd-clock's round-tagged\n\
         quorum advancement keeps a finite convergence beat across the\n\
         whole range. bd-clock cells also show the quorum-vs-timeout\n\
         advancement split (q/t, per node) from the report extras.",
        &rows,
        |cell, chunk, _delay| {
            let mean_extra = |name: &str| {
                let vals: Vec<f64> = chunk.iter().filter_map(|r| r.extra(name)).collect();
                if vals.is_empty() {
                    None
                } else {
                    Some(vals.iter().sum::<f64>() / vals.len() as f64)
                }
            };
            if let (Some(q), Some(t)) = (
                mean_extra("bd_quorum_ticks"),
                mean_extra("bd_timeout_events"),
            ) {
                cell.push_str(&format!(" \u{b7} q/t={q:.0}/{t:.0}"));
            }
        },
    );
    if !grid.jsonl {
        println!(
            "Rerun any cell:\n  cargo run --release -p byzclock-bench --bin experiments -- spec \\\n    \"{}\"\n",
            rows[2].1.clone().with_delay(2).with_seed(0)
        );
    }
}
