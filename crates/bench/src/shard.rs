//! Process-sharded sweeps: a coordinator/worker backend with resumable
//! manifests.
//!
//! [`sweep_specs`] is the backend-aware generalization of
//! [`crate::sweep`]: the same `Vec<ScenarioSpec> → Vec<Result<RunReport>>`
//! contract, but the execution substrate is a [`SweepBackend`] —
//! [`SweepBackend::Threads`] fans the grid across a scoped thread pool in
//! this process (exactly what [`crate::sweep`] always did), while
//! [`SweepBackend::Processes`] shards it across worker *subprocesses*.
//! Either way the results come back **in input order**, so aggregation is
//! deterministic regardless of scheduling, and for any grid the two
//! backends produce byte-identical `RunReport::to_json` lines (pinned by
//! `tests/shard_backend.rs` and a CI smoke diff).
//!
//! # The worker protocol
//!
//! A worker is any process that speaks one line of text per spec:
//!
//! ```text
//! stdin :  one canonical ScenarioSpec line per job
//! stdout:  one JSON line per job, in input order — either the
//!          RunReport::to_json of the finished run, or
//!          {"error":"<message>"} if the spec itself is unrunnable
//! ```
//!
//! Workers exit when stdin closes. The `experiments` binary is its own
//! worker (`experiments worker`), so the default [`SweepOptions::worker`]
//! command is simply a re-exec of the current executable; the coordinator
//! exports `BYZCLOCK_WORKER_EXACT=1` when [`SweepOptions::exact`] asks
//! for full-budget (`run_exact`) semantics, so wrapper scripts inherit
//! the mode for free. This line protocol deliberately carries no session
//! state — it is the same protocol a multi-*machine* backend can speak
//! over a socket later.
//!
//! Reports cross the boundary through [`RunReport::from_json`], which is
//! exact at the JSON level, so `--jsonl` archives are byte-identical
//! whichever backend produced them.
//!
//! # Failure handling
//!
//! The coordinator runs one scheduling thread per worker slot, all
//! popping from one shared queue. A worker that dies (crash, killed, or
//! stdout EOF), emits a malformed or mismatched report line, or blows the
//! per-spec [`SweepOptions::timeout`] is killed and respawned, and the
//! spec is **requeued** on the shared queue — a surviving worker (or the
//! respawn) picks it up — with a bounded per-spec retry budget
//! ([`SweepOptions::retries`]). A spec that exhausts its budget reports
//! [`ScenarioError::Sweep`]; spec-level errors relayed by a healthy
//! worker (`{"error":…}` lines) are terminal immediately, exactly like
//! the thread backend's per-spec errors.
//!
//! # The manifest
//!
//! [`SweepOptions::manifest`] names an append-only JSONL file of
//! completed work: one `{"mode":"converge|exact","report":{…}}` line per
//! finished spec, flushed as results land, keyed by the **canonical spec
//! line** (`ScenarioSpec::to_string`, which `RunReport.spec` echoes). On
//! start, specs whose key is already present (under the same mode) are
//! served from the manifest without running; everything else runs and is
//! appended. Malformed lines — say, the torn tail of a crashed
//! coordinator — are skipped, so a manifest is always safe to resume
//! from. Both backends honor the manifest, and the key is
//! backend-agnostic, so a sweep can be started under threads, killed, and
//! finished under processes (or vice versa).

use byzclock::scenario::{ProtocolRegistry, RunReport, ScenarioError, ScenarioSpec};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One spec's sweep outcome.
pub type SweepResult = Result<RunReport, ScenarioError>;

/// One result slot of a timed sweep: unresolved, or the outcome plus the
/// coordinator wall-clock (`None` when served from the manifest).
type TimedSlot = Option<(SweepResult, Option<Duration>)>;

/// In-beat stepping budget per sweep worker: one global thread budget
/// (`BYZCLOCK_THREADS`, or the core count) divided across the sweep's
/// worker slots. Sweep workers and the simulator's `step_threads`
/// *multiply* — a 8-worker sweep whose every node-stepping phase also
/// fanned out 8-wide would oversubscribe the machine 8× — so the
/// coordinator hands each worker `total / workers` (at least 1) and the
/// worker's runs inherit it. An explicit `BYZCLOCK_STEP_THREADS` in the
/// environment wins over this split on both backends: the user asked for
/// that fan-out, the coordinator only fills in a default.
pub fn step_threads_per_worker(workers: usize) -> usize {
    (crate::default_threads() / workers.max(1)).max(1)
}

/// Which execution substrate runs a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepBackend {
    /// Scoped worker threads in this process (the historical
    /// [`crate::sweep`] behavior).
    Threads(usize),
    /// Worker subprocesses speaking the [module-level](self) line
    /// protocol.
    Processes {
        /// Number of worker processes to keep alive.
        workers: usize,
    },
}

impl SweepBackend {
    /// Parses the CLI form: `threads[:N]` or `procs[:N]`; a missing `N`
    /// falls back to [`crate::default_threads`].
    pub fn parse(s: &str) -> Result<SweepBackend, String> {
        let (kind, count) = match s.split_once(':') {
            Some((kind, n)) => {
                let count = n
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| format!("bad worker count `{n}` in backend `{s}`"))?;
                (kind, count)
            }
            None => (s, crate::default_threads()),
        };
        match kind {
            "threads" => Ok(SweepBackend::Threads(count)),
            "procs" => Ok(SweepBackend::Processes { workers: count }),
            _ => Err(format!(
                "unknown sweep backend `{s}` (valid: threads[:N], procs[:N])"
            )),
        }
    }
}

impl fmt::Display for SweepBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepBackend::Threads(n) => write!(f, "threads:{n}"),
            SweepBackend::Processes { workers } => write!(f, "procs:{workers}"),
        }
    }
}

/// Knobs shared by every sweep backend.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Worker command line for [`SweepBackend::Processes`]. Empty (the
    /// default) re-execs the current executable with one argument,
    /// `worker` — correct inside the `experiments` binary, which serves
    /// its own worker mode. Any other host (tests, custom harnesses)
    /// must point this at a real worker, e.g.
    /// `[env!("CARGO_BIN_EXE_experiments"), "worker"]`.
    pub worker: Vec<String>,
    /// Resumable-manifest path; `None` disables the manifest.
    pub manifest: Option<PathBuf>,
    /// Per-spec wall-clock timeout under [`SweepBackend::Processes`];
    /// `None` (the default) waits indefinitely, which is right for grids
    /// whose cells legitimately run minutes.
    pub timeout: Option<Duration>,
    /// Worker attempts per spec before it reports
    /// [`ScenarioError::Sweep`] (transport failures only; spec-level
    /// errors never retry). At least 1.
    pub retries: u32,
    /// Run each spec's full beat budget (`registry.run_exact`) instead of
    /// stopping at stable sync (`registry.run`) — the steady-state mode
    /// the `m1` traffic grid needs.
    pub exact: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            worker: Vec::new(),
            manifest: None,
            timeout: None,
            retries: 3,
            exact: false,
        }
    }
}

/// Fans `specs` across the chosen backend and returns one result per
/// spec, **in input order** — the backend-aware generalization of
/// [`crate::sweep`]. See the [module docs](self) for the worker protocol,
/// failure handling, and the manifest format.
pub fn sweep_specs(
    registry: &ProtocolRegistry,
    specs: &[ScenarioSpec],
    backend: SweepBackend,
    opts: &SweepOptions,
) -> Vec<SweepResult> {
    sweep_specs_timed(registry, specs, backend, opts)
        .into_iter()
        .map(|(result, _)| result)
        .collect()
}

/// [`sweep_specs`] plus each spec's coordinator-side wall-clock: the time
/// from handing the spec to a worker (thread or subprocess) to receiving
/// its report. Manifest-served specs carry `None` — nothing ran, so there
/// is no honest duration to report. The throughput grids (`m2`) divide
/// executed beats by this to get beats/sec; it includes the process
/// backend's pipe round-trip, which is noise at the multi-second cell
/// sizes those grids measure.
pub fn sweep_specs_timed(
    registry: &ProtocolRegistry,
    specs: &[ScenarioSpec],
    backend: SweepBackend,
    opts: &SweepOptions,
) -> Vec<(SweepResult, Option<Duration>)> {
    let keys: Vec<String> = specs.iter().map(ToString::to_string).collect();
    let mut slots: Vec<TimedSlot> = vec![None; specs.len()];

    if let Some(path) = opts.manifest.as_deref() {
        let cached = load_manifest(path, opts.exact);
        for (slot, key) in slots.iter_mut().zip(&keys) {
            if let Some(report) = cached.get(key) {
                *slot = Some((Ok(report.clone()), None));
            }
        }
    }
    let pending: Vec<usize> = slots
        .iter()
        .enumerate()
        .filter_map(|(i, s)| s.is_none().then_some(i))
        .collect();

    if !pending.is_empty() {
        let writer = opts.manifest.as_deref().map(|path| {
            let mut file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .unwrap_or_else(|e| panic!("cannot append to manifest {path:?}: {e}"));
            // If the file ends in a torn line (a coordinator died
            // mid-append), start this session's entries on a fresh line
            // so the tear corrupts at most its own entry.
            if !ends_with_newline(path) {
                let _ = writeln!(file);
            }
            Mutex::new(file)
        });
        match backend {
            SweepBackend::Threads(threads) => run_threads(
                registry,
                specs,
                &pending,
                &mut slots,
                threads,
                opts,
                writer.as_ref(),
            ),
            SweepBackend::Processes { workers } => {
                run_processes(&keys, &pending, &mut slots, workers, opts, writer.as_ref())
            }
        }
    }

    slots
        .into_iter()
        .map(|s| s.expect("every spec resolved"))
        .collect()
}

/// The in-process backend: [`crate::parallel_trials`] over the pending
/// indices, manifest entries appended as results land. Each worker thread
/// steps its runs with the [`step_threads_per_worker`] budget (unless the
/// user pinned `BYZCLOCK_STEP_THREADS` themselves), so the two layers of
/// parallelism share one machine instead of multiplying.
fn run_threads(
    registry: &ProtocolRegistry,
    specs: &[ScenarioSpec],
    pending: &[usize],
    slots: &mut [TimedSlot],
    threads: usize,
    opts: &SweepOptions,
    writer: Option<&Mutex<File>>,
) {
    let workers = threads.max(1).min(pending.len().max(1));
    let step_budget = step_threads_per_worker(workers);
    let pin_step_threads = std::env::var_os("BYZCLOCK_STEP_THREADS").is_none();
    let results = crate::parallel_trials(pending.len() as u64, threads, |i| {
        if pin_step_threads {
            // Thread-local: contained to this scoped worker thread, gone
            // when the pool unwinds.
            byzclock_sim::set_step_threads_override(Some(step_budget));
        }
        let spec = &specs[pending[i as usize]];
        let start = Instant::now();
        let result = if opts.exact {
            registry.run_exact(spec)
        } else {
            registry.run(spec)
        };
        let elapsed = start.elapsed();
        if let (Some(writer), Ok(report)) = (writer, &result) {
            append_manifest_line(writer, opts.exact, report);
        }
        (result, Some(elapsed))
    });
    for (&idx, result) in pending.iter().zip(results) {
        slots[idx] = Some(result);
    }
}

// ---------------------------------------------------------------------------
// The process coordinator
// ---------------------------------------------------------------------------

/// Shared coordinator state: the job queue, the result slots, and the
/// sweep configuration every scheduling thread reads.
struct Coordinator<'a> {
    /// `(spec index, attempts so far)`.
    queue: Mutex<VecDeque<(usize, u32)>>,
    slots: Mutex<&'a mut [TimedSlot]>,
    keys: &'a [String],
    cmd: Vec<String>,
    exact: bool,
    /// `BYZCLOCK_STEP_THREADS` exported to every worker subprocess (see
    /// [`step_threads_per_worker`]); `None` leaves the parent's own
    /// setting to inherit untouched.
    step_threads: Option<usize>,
    timeout: Option<Duration>,
    retries: u32,
    writer: Option<&'a Mutex<File>>,
}

fn run_processes(
    keys: &[String],
    pending: &[usize],
    slots: &mut [TimedSlot],
    workers: usize,
    opts: &SweepOptions,
    writer: Option<&Mutex<File>>,
) {
    let cmd = if opts.worker.is_empty() {
        let exe = std::env::current_exe()
            .unwrap_or_else(|e| panic!("cannot locate the worker executable: {e}"));
        vec![exe.to_string_lossy().into_owned(), "worker".to_string()]
    } else {
        opts.worker.clone()
    };
    let worker_count = workers.max(1).min(pending.len());
    let step_threads = std::env::var_os("BYZCLOCK_STEP_THREADS")
        .is_none()
        .then(|| step_threads_per_worker(worker_count));
    let ctx = Coordinator {
        queue: Mutex::new(pending.iter().map(|&i| (i, 0)).collect()),
        slots: Mutex::new(slots),
        keys,
        cmd,
        exact: opts.exact,
        step_threads,
        timeout: opts.timeout,
        retries: opts.retries.max(1),
        writer,
    };
    let workers = worker_count;
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| worker_slot(&ctx));
        }
    });
}

/// One scheduling thread: keeps one worker subprocess alive, feeds it
/// specs off the shared queue, and requeues on any transport failure.
fn worker_slot(ctx: &Coordinator<'_>) {
    let mut worker: Option<WorkerProc> = None;
    loop {
        let Some((idx, attempts)) = ctx.queue.lock().expect("queue lock").pop_front() else {
            break;
        };
        let key = &ctx.keys[idx];
        if worker.is_none() {
            match WorkerProc::spawn(&ctx.cmd, ctx.exact, ctx.step_threads) {
                Ok(w) => worker = Some(w),
                Err(e) => {
                    transport_failure(ctx, idx, attempts, &format!("spawn failed: {e}"));
                    continue;
                }
            }
        }
        let start = Instant::now();
        let outcome = worker
            .as_mut()
            .expect("spawned above")
            .submit(key, ctx.timeout);
        let elapsed = start.elapsed();
        match outcome {
            Ok(line) => {
                if let Some(msg) = parse_error_line(&line) {
                    // A healthy worker relaying a spec-level error: the
                    // retry budget is for transport faults, not for specs
                    // that deterministically cannot run.
                    record(ctx, idx, Err(ScenarioError::Sweep(msg)), None);
                } else if let Some(report) = RunReport::from_json(&line) {
                    if report.spec == *key {
                        if let Some(writer) = ctx.writer {
                            append_manifest_line(writer, ctx.exact, &report);
                        }
                        record(ctx, idx, Ok(report), Some(elapsed));
                    } else {
                        worker.take().expect("present").shutdown();
                        transport_failure(
                            ctx,
                            idx,
                            attempts,
                            &format!("worker answered for the wrong spec (`{}`)", report.spec),
                        );
                    }
                } else {
                    worker.take().expect("present").shutdown();
                    transport_failure(ctx, idx, attempts, "malformed report line from worker");
                }
            }
            Err(failure) => {
                worker.take().expect("present").shutdown();
                transport_failure(ctx, idx, attempts, &failure);
            }
        }
    }
    if let Some(w) = worker {
        w.shutdown();
    }
}

/// Requeues a spec after a transport fault, or records the terminal
/// [`ScenarioError::Sweep`] once its retry budget is spent.
fn transport_failure(ctx: &Coordinator<'_>, idx: usize, attempts: u32, msg: &str) {
    let attempts = attempts + 1;
    if attempts >= ctx.retries {
        record(
            ctx,
            idx,
            Err(ScenarioError::Sweep(format!(
                "spec `{}` failed after {attempts} worker attempts: {msg}",
                ctx.keys[idx]
            ))),
            None,
        );
    } else {
        ctx.queue
            .lock()
            .expect("queue lock")
            .push_back((idx, attempts));
    }
}

fn record(ctx: &Coordinator<'_>, idx: usize, result: SweepResult, elapsed: Option<Duration>) {
    ctx.slots.lock().expect("slots lock")[idx] = Some((result, elapsed));
}

/// A live worker subprocess plus the channel its stdout drains into.
struct WorkerProc {
    child: Child,
    stdin: Option<ChildStdin>,
    lines: Receiver<String>,
    reader: Option<std::thread::JoinHandle<()>>,
}

impl WorkerProc {
    fn spawn(
        cmd: &[String],
        exact: bool,
        step_threads: Option<usize>,
    ) -> std::io::Result<WorkerProc> {
        let mut command = Command::new(&cmd[0]);
        command
            .args(&cmd[1..])
            .env("BYZCLOCK_WORKER_EXACT", if exact { "1" } else { "0" })
            .stdin(Stdio::piped())
            .stdout(Stdio::piped());
        if let Some(budget) = step_threads {
            // The coordinator's share of the machine for this worker's
            // in-beat stepping; only set when the parent environment did
            // not pin a value (the user's own setting must win).
            command.env("BYZCLOCK_STEP_THREADS", budget.to_string());
        }
        let mut child = command.spawn()?;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = child.stdout.take().expect("piped stdout");
        let (tx, lines) = mpsc::channel();
        // A dedicated reader thread turns blocking pipe reads into
        // `recv_timeout`-able messages; it exits on worker EOF (channel
        // disconnect is the coordinator's death signal).
        let reader = std::thread::spawn(move || {
            let mut stdout = BufReader::new(stdout);
            loop {
                let mut line = String::new();
                match stdout.read_line(&mut line) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {
                        if tx
                            .send(line.trim_end_matches(['\n', '\r']).to_string())
                            .is_err()
                        {
                            break;
                        }
                    }
                }
            }
        });
        Ok(WorkerProc {
            child,
            stdin: Some(stdin),
            lines,
            reader: Some(reader),
        })
    }

    /// Sends one spec line and waits for its single response line.
    fn submit(&mut self, spec_line: &str, timeout: Option<Duration>) -> Result<String, String> {
        let stdin = self.stdin.as_mut().expect("open until shutdown");
        if let Err(e) = writeln!(stdin, "{spec_line}").and_then(|()| stdin.flush()) {
            return Err(format!("worker stdin closed: {e}"));
        }
        match timeout {
            Some(t) => self.lines.recv_timeout(t).map_err(|e| match e {
                RecvTimeoutError::Timeout => format!("timed out after {t:?}"),
                RecvTimeoutError::Disconnected => "worker died (stdout closed)".to_string(),
            }),
            None => self
                .lines
                .recv()
                .map_err(|_| "worker died (stdout closed)".to_string()),
        }
    }

    /// Tears the worker down: close stdin, kill whatever is left, reap,
    /// and join the reader. Used both for clean end-of-queue shutdown
    /// (the worker has already exited on EOF by the time kill fires) and
    /// for failure-path disposal of wedged workers.
    fn shutdown(mut self) {
        drop(self.stdin.take());
        let _ = self.child.kill();
        let _ = self.child.wait();
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
    }
}

/// Renders the worker-side line for a spec that cannot run.
pub fn error_line(message: &str) -> String {
    format!("{{\"error\":{message:?}}}")
}

/// Recognizes an [`error_line`]; returns the message.
fn parse_error_line(line: &str) -> Option<String> {
    let body = line.strip_prefix("{\"error\":\"")?.strip_suffix("\"}")?;
    let mut out = String::new();
    let mut chars = body.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                other => {
                    out.push('\\');
                    out.push(other);
                }
            }
        } else {
            out.push(c);
        }
    }
    Some(out)
}

// ---------------------------------------------------------------------------
// The worker side
// ---------------------------------------------------------------------------

/// The worker half of the protocol: reads one spec line per job from
/// `input`, runs it against `registry`, and writes one JSON line per job
/// to `output` (flushed per line — the coordinator is waiting on it).
/// Blank input lines are ignored; returns when `input` reaches EOF.
pub fn worker_loop<R: BufRead, W: Write>(
    registry: &ProtocolRegistry,
    exact: bool,
    input: R,
    mut output: W,
) -> std::io::Result<()> {
    for line in input.lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let response = ScenarioSpec::parse(line)
            .and_then(|spec| {
                if exact {
                    registry.run_exact(&spec)
                } else {
                    registry.run(&spec)
                }
            })
            .map_or_else(|e| error_line(&e.to_string()), |report| report.to_json());
        writeln!(output, "{response}")?;
        output.flush()?;
    }
    Ok(())
}

/// Whether a worker invocation asked for full-budget semantics: the
/// coordinator exports `BYZCLOCK_WORKER_EXACT=1` (inherited by wrapper
/// scripts), and `--exact` works for running a worker by hand.
pub fn worker_exact_requested(args: &[String]) -> bool {
    args.iter().any(|a| a == "--exact")
        || std::env::var("BYZCLOCK_WORKER_EXACT").is_ok_and(|v| v == "1")
}

// ---------------------------------------------------------------------------
// The manifest
// ---------------------------------------------------------------------------

fn mode_tag(exact: bool) -> &'static str {
    if exact {
        "exact"
    } else {
        "converge"
    }
}

/// Loads a manifest's completed reports for one mode, keyed by canonical
/// spec line. A missing file is an empty manifest; malformed lines (torn
/// tails, hand edits) are skipped, and entries for other modes or other
/// grids are simply never looked up.
pub fn load_manifest(path: &Path, exact: bool) -> BTreeMap<String, RunReport> {
    let Ok(file) = File::open(path) else {
        return BTreeMap::new();
    };
    let mut cached = BTreeMap::new();
    for line in BufReader::new(file).lines() {
        let Ok(line) = line else { break };
        if let Some(report) = parse_manifest_line(&line, exact) {
            cached.insert(report.spec.clone(), report);
        }
    }
    cached
}

fn manifest_line(exact: bool, report: &RunReport) -> String {
    format!(
        "{{\"mode\":\"{}\",\"report\":{}}}",
        mode_tag(exact),
        report.to_json()
    )
}

fn parse_manifest_line(line: &str, exact: bool) -> Option<RunReport> {
    let body = line
        .trim()
        .strip_prefix("{\"mode\":\"")?
        .strip_prefix(mode_tag(exact))?
        .strip_prefix("\",\"report\":")?
        .strip_suffix('}')?;
    RunReport::from_json(body)
}

/// Whether the manifest's last byte is a newline (a missing or empty
/// file trivially is: there is no torn line to guard against).
fn ends_with_newline(path: &Path) -> bool {
    use std::io::{Read, Seek, SeekFrom};
    let Ok(mut file) = File::open(path) else {
        return true;
    };
    let Ok(len) = file.seek(SeekFrom::End(0)) else {
        return true;
    };
    if len == 0 {
        return true;
    }
    let mut last = [0u8; 1];
    file.seek(SeekFrom::End(-1)).is_ok() && file.read_exact(&mut last).is_ok() && last[0] == b'\n'
}

fn append_manifest_line(writer: &Mutex<File>, exact: bool, report: &RunReport) {
    let mut file = writer.lock().expect("manifest lock");
    let _ = writeln!(file, "{}", manifest_line(exact, report));
    let _ = file.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_grammar_round_trips() {
        assert_eq!(
            SweepBackend::parse("threads:4").unwrap(),
            SweepBackend::Threads(4)
        );
        assert_eq!(
            SweepBackend::parse("procs:2").unwrap(),
            SweepBackend::Processes { workers: 2 }
        );
        for s in ["threads:4", "procs:2", "procs:16"] {
            assert_eq!(SweepBackend::parse(s).unwrap().to_string(), s);
        }
        // The exact `--backend=` values shown in README.md,
        // ARCHITECTURE.md, the experiments usage text, and the CI smoke
        // step — a failure here means those documents drifted from the
        // parser.
        for documented in ["threads:2", "procs:2", "procs:4"] {
            assert_eq!(
                SweepBackend::parse(documented).unwrap().to_string(),
                documented
            );
        }
        // Countless forms fall back to the thread default.
        assert!(matches!(
            SweepBackend::parse("threads"),
            Ok(SweepBackend::Threads(n)) if n >= 1
        ));
        assert!(matches!(
            SweepBackend::parse("procs"),
            Ok(SweepBackend::Processes { workers }) if workers >= 1
        ));
        for bad in ["", "fibers:2", "procs:0", "procs:x", "threads:-1"] {
            assert!(SweepBackend::parse(bad).is_err(), "`{bad}` parsed");
        }
    }

    #[test]
    fn step_budget_splits_the_machine_across_workers() {
        let total = crate::default_threads();
        // One worker owns the whole budget; `total` workers get one
        // stepping thread each; oversubscribed counts floor at 1.
        assert_eq!(step_threads_per_worker(1), total);
        assert_eq!(step_threads_per_worker(total), 1);
        assert_eq!(step_threads_per_worker(total * 64), 1);
        // Degenerate zero is treated as one worker, never a panic.
        assert_eq!(step_threads_per_worker(0), total);
    }

    #[test]
    fn timed_sweep_reports_durations_only_for_executed_specs() {
        let registry = byzclock::scenario::default_registry();
        let specs: Vec<ScenarioSpec> = [3, 5]
            .into_iter()
            .map(|seed| {
                ScenarioSpec::new("two-clock", 4, 1)
                    .with_coin(byzclock::scenario::CoinSpec::perfect_oracle())
                    .with_budget(300)
                    .with_seed(seed)
            })
            .collect();
        let manifest = std::env::temp_dir().join(format!(
            "byzclock-timed-sweep-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&manifest);
        let opts = SweepOptions {
            manifest: Some(manifest.clone()),
            ..SweepOptions::default()
        };
        let first = sweep_specs_timed(&registry, &specs, SweepBackend::Threads(2), &opts);
        for (result, elapsed) in &first {
            assert!(result.is_ok());
            assert!(elapsed.is_some(), "executed specs carry wall-clock");
        }
        // Second pass: every spec is served from the manifest, so nothing
        // ran and no duration is invented.
        let second = sweep_specs_timed(&registry, &specs, SweepBackend::Threads(2), &opts);
        for ((result, _), (cached, elapsed)) in first.iter().zip(&second) {
            assert!(elapsed.is_none(), "manifest-served specs carry no duration");
            assert_eq!(
                result.as_ref().unwrap().to_json(),
                cached.as_ref().unwrap().to_json()
            );
        }
        let _ = std::fs::remove_file(&manifest);
    }

    #[test]
    fn error_lines_round_trip() {
        for msg in [
            "unknown protocol `x`",
            "weird \"quoted\" message with \\ backslash",
        ] {
            let line = error_line(msg);
            assert_eq!(parse_error_line(&line).as_deref(), Some(msg), "{line}");
            // An error line must never parse as a report.
            assert!(RunReport::from_json(&line).is_none());
        }
        assert_eq!(parse_error_line("{\"spec\":\"...\"}"), None);
    }

    #[test]
    fn manifest_lines_round_trip_and_respect_mode() {
        let registry = byzclock::scenario::default_registry();
        let spec = ScenarioSpec::new("two-clock", 4, 1)
            .with_coin(byzclock::scenario::CoinSpec::perfect_oracle())
            .with_budget(300);
        let report = registry.run(&spec).unwrap();
        let line = manifest_line(false, &report);
        let parsed = parse_manifest_line(&line, false).expect("round trips");
        assert_eq!(parsed.to_json(), report.to_json());
        // The same line under the other mode is not a hit.
        assert!(parse_manifest_line(&line, true).is_none());
        assert!(parse_manifest_line("{\"mode\":\"converge\",\"report\":{gar", false).is_none());
    }

    #[test]
    fn worker_loop_speaks_the_line_protocol() {
        let registry = byzclock::scenario::default_registry();
        let spec = ScenarioSpec::new("two-clock", 4, 1)
            .with_coin(byzclock::scenario::CoinSpec::perfect_oracle())
            .with_budget(300);
        let input = format!("{spec}\n\nno-such-clock n=4 f=1\nnot a spec line at all\n");
        let mut output = Vec::new();
        worker_loop(&registry, false, input.as_bytes(), &mut output).unwrap();
        let output = String::from_utf8(output).unwrap();
        let lines: Vec<&str> = output.lines().collect();
        // Blank input line ignored: three jobs, three responses, in order.
        assert_eq!(lines.len(), 3);
        let report = RunReport::from_json(lines[0]).expect("first line is a report");
        assert_eq!(report.spec, spec.to_string());
        assert_eq!(report.to_json(), registry.run(&spec).unwrap().to_json());
        assert!(parse_error_line(lines[1])
            .unwrap()
            .contains("unknown protocol"));
        assert!(parse_error_line(lines[2])
            .unwrap()
            .contains("malformed token"));
    }

    #[test]
    fn worker_loop_exact_mode_runs_the_full_budget() {
        let registry = byzclock::scenario::default_registry();
        let spec = ScenarioSpec::new("two-clock", 4, 1)
            .with_coin(byzclock::scenario::CoinSpec::perfect_oracle())
            .with_budget(200);
        let mut converge = Vec::new();
        let mut exact = Vec::new();
        worker_loop(
            &registry,
            false,
            format!("{spec}\n").as_bytes(),
            &mut converge,
        )
        .unwrap();
        worker_loop(&registry, true, format!("{spec}\n").as_bytes(), &mut exact).unwrap();
        let converge = RunReport::from_json(String::from_utf8(converge).unwrap().trim()).unwrap();
        let exact = RunReport::from_json(String::from_utf8(exact).unwrap().trim()).unwrap();
        assert!(converge.beats < 200, "stops at stable sync");
        assert_eq!(exact.beats, 200, "exact mode runs the whole budget");
    }
}
