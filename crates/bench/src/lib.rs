//! Measurement utilities for the reproduction harness: parallel
//! Monte-Carlo trials, spec-grid sweeps, summary statistics, and Markdown
//! table rendering — plus the `experiments` binary built on them.
//!
//! This page is the reference for the harness's command-line surface and
//! for the offline-dependency story (ARCHITECTURE.md carries the same
//! material as an appendix; the spec-line grammar itself is documented on
//! `byzclock_core::scenario::ScenarioSpec`).
//!
//! # The `experiments` binary
//!
//! ```text
//! cargo run --release -p byzclock-bench --bin experiments -- \
//!     [--jsonl] [--backend=threads[:N]|procs[:N]] [--manifest=FILE] \
//!     [t1|f1|f2|f3|f4|a1|a2|r1|s1|m1|m2|d1|d2|all]
//! cargo run --release -p byzclock-bench --bin experiments -- \
//!     [--jsonl] spec "<scenario line>" ["<scenario line>" ...]
//! cargo run --release -p byzclock-bench --bin experiments -- \
//!     [--jsonl] lint [--rule=D1|P1|A1|W1|S1]
//! cargo run --release -p byzclock-bench --bin experiments -- \
//!     worker [--exact]
//! ```
//!
//! **Named grids.** Each name regenerates one table or figure of the
//! paper as Markdown on stdout: `t1` (Table 1 convergence), `f1`–`f4`
//! (the Fig. 1–4 contracts), `a1`/`a2` (the Remark 3.1/4.1 ablations),
//! `r1` (resiliency boundary), `s1` (self-stabilization), `m1` (message
//! complexity), `m2` (the beats/sec × n throughput curve — how fast one
//! simulated beat runs as n scales to 512, plus bytes/beat and the
//! committee column's fitted bytes/beat exponent), `d1`
//! (lockstep vs bounded-delay degradation), `d2` (bd-clock delay
//! tolerance). `all` (the default) runs everything.
//! Every cell is produced through the scenario API, so each one is a
//! replayable one-line spec.
//!
//! **`spec` subcommand.** Runs each quoted scenario line through the
//! default registry and prints one `RunReport::to_json` line per spec —
//! the way to replay any single grid point:
//!
//! ```text
//! experiments spec "clock-sync n=7 f=2 k=64 coin=ticket delay=2"
//! ```
//!
//! **`lint` subcommand.** Runs the `byzclock-lint` invariant pass (the
//! workspace's static contracts: `D1` determinism, `P1` decode
//! panic-freedom, `A1` hot-path allocation, `W1` wire coverage, `S1`
//! spec-key drift — see the `byzclock-lint` crate docs and
//! ARCHITECTURE.md's "static-analysis seam" section). One verdict per
//! rule, one diagnostic per unsuppressed finding, exit 1 when the
//! workspace is not clean; with `--jsonl` both ride the
//! `RunReport::to_json` rails (`spec: "lint rule=D1 files=N"`).
//! `--rule=ID` restricts the pass to one rule.
//!
//! **`--jsonl`.** Switches output to one stable-keyed JSON line per
//! executed spec (diffable, archivable). It applies to `spec` and to the
//! sweep-based `d1`/`d2`/`m1`/`m2` grids; the hand-aggregated paper tables
//! always render Markdown, and the binary exits with an error rather than
//! mixing formats on one stream.
//!
//! **`--backend` and `--manifest`.** The sweep-based grids
//! (`d1`/`d2`/`m1`/`m2`) accept `--backend=threads[:N]` (the default: a
//! thread pool in this process) or `--backend=procs[:N]` (N worker
//! subprocesses, each an `experiments worker` re-exec — see
//! [`shard`]). Output is byte-identical across backends.
//! `--manifest=FILE` makes the sweep resumable: completed reports are
//! appended to `FILE` as they land and served from it on restart.
//!
//! **`worker` subcommand.** The worker half of the process backend:
//! reads canonical spec lines on stdin, writes one `RunReport::to_json`
//! (or `{"error":…}`) line per spec on stdout, exits on EOF. `--exact`
//! (or `BYZCLOCK_WORKER_EXACT=1`, which the coordinator exports) runs
//! each spec's full beat budget instead of stopping at stable sync.
//!
//! **Environment knobs.** `BYZCLOCK_TRIALS` scales every grid's trial
//! count ([`trials`]); `BYZCLOCK_THREADS` caps the machine-wide thread
//! budget ([`default_threads`]) — sweep coordinators split it across
//! their worker slots and hand each worker the remainder as its in-beat
//! `step_threads` default ([`step_threads_per_worker`]), so the two
//! layers of parallelism never multiply; `BYZCLOCK_STEP_THREADS` pins the
//! in-beat fan-out explicitly and wins over that split;
//! `BYZCLOCK_M2_MAX_N` caps the largest n the `m2` grid runs
//! ([`m2_max_n`]: a standalone `m2` defaults to the full 512-point
//! curve, `all` caps at 64 to stay interactive, the CI smoke sets 128);
//! `BYZCLOCK_BEAT_SCALING_NS` trims the cluster sizes
//! `benches/beat_scaling.rs` prices; `PROPTEST_CASES` and
//! `CRITERION_MEASURE_MS` keep the property tests and benches fast in
//! CI.
//!
//! # Offline compat stubs and the swap-back path
//!
//! The build environment has no crates.io access, so four third-party
//! dependencies resolve to API-compatible stand-ins under
//! `crates/compat/`: `rand` (seedable `StdRng`-style PRNG), `bytes`
//! (`BytesMut` encode buffers), `proptest` (strategy/`proptest!` subset),
//! and `criterion` (timing-loop bench harness; results print as
//! `name … time/iter`). `serde` and `parking_lot` were dropped outright
//! (hand-rolled JSON in `RunReport::to_json`, std `Mutex` in the oracle
//! beacon). **Swap-back:** to use the real crates, replace the four
//! `[workspace.dependencies]` path entries in the root `Cargo.toml` with
//! registry versions (`rand = "0.9"`, `bytes = "1"`, `proptest = "1"`,
//! `criterion = "0.5"`) and delete `crates/compat/` — the stubs expose
//! the same call surface the workspace uses, so no source change is
//! expected beyond the manifests.
//!
//! # Example
//!
//! ```
//! use byzclock::scenario::{default_registry, ScenarioSpec};
//! use byzclock_bench::{md_table, sweep, Summary};
//!
//! // A two-point sweep over one thread pool, aggregated into a table.
//! let registry = default_registry();
//! let specs: Vec<ScenarioSpec> = (0..2)
//!     .map(|seed| ScenarioSpec::parse("two-clock n=4 f=1 coin=oracle budget=300")
//!         .unwrap()
//!         .with_seed(seed))
//!     .collect();
//! let samples: Vec<Option<u64>> = sweep(&registry, &specs, 2)
//!     .into_iter()
//!     .map(|r| r.expect("registered protocol").beats_to_sync())
//!     .collect();
//! let summary = Summary::of(&samples);
//! assert_eq!(summary.trials, 2);
//! let table = md_table(&["protocol", "beats"], &[vec!["two-clock".into(), summary.cell(300)]]);
//! assert!(table.starts_with("| protocol | beats |"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use byzclock::scenario::{ProtocolRegistry, RunReport, ScenarioError, ScenarioSpec};
use std::fmt::Write as _;

pub mod shard;

pub use shard::{
    step_threads_per_worker, sweep_specs, sweep_specs_timed, SweepBackend, SweepOptions,
    SweepResult,
};

/// Summary statistics over convergence-time samples; `None` samples are
/// timeouts at the experiment's horizon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of trials.
    pub trials: usize,
    /// Trials that did not converge within the horizon.
    pub timeouts: usize,
    /// Mean over converged trials.
    pub mean: f64,
    /// Median over converged trials.
    pub p50: f64,
    /// 95th percentile over converged trials.
    pub p95: f64,
    /// Maximum over converged trials.
    pub max: u64,
}

impl Summary {
    /// Summarizes samples (`None` = timeout).
    pub fn of(samples: &[Option<u64>]) -> Summary {
        let mut ok: Vec<u64> = samples.iter().flatten().copied().collect();
        ok.sort_unstable();
        let timeouts = samples.len() - ok.len();
        if ok.is_empty() {
            return Summary {
                trials: samples.len(),
                timeouts,
                mean: f64::NAN,
                p50: f64::NAN,
                p95: f64::NAN,
                max: 0,
            };
        }
        let mean = ok.iter().map(|&x| x as f64).sum::<f64>() / ok.len() as f64;
        let pct = |q: f64| -> f64 {
            let idx = ((ok.len() as f64 - 1.0) * q).round() as usize;
            ok[idx] as f64
        };
        Summary {
            trials: samples.len(),
            timeouts,
            mean,
            p50: pct(0.5),
            p95: pct(0.95),
            max: *ok.last().expect("nonempty"),
        }
    }

    /// Compact cell text: `mean (p95)`, with a timeout annotation.
    pub fn cell(&self, horizon: u64) -> String {
        if self.timeouts == self.trials {
            return format!("> {horizon} (all {} timed out)", self.trials);
        }
        let mut s = format!("{:.1} (p95 {:.0})", self.mean, self.p95);
        if self.timeouts > 0 {
            let _ = write!(s, " [{}/{} > {horizon}]", self.timeouts, self.trials);
        }
        s
    }
}

/// Runs `trials` seeded trials in parallel (scoped threads) and returns
/// the results in seed order. `run` must be deterministic in the seed.
pub fn parallel_trials<T, F>(trials: u64, threads: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    // Balanced chunking: sizes differ by at most one, so every thread
    // receives work whenever `trials >= threads` (e.g. 17 trials over 4
    // threads is 5+4+4+4, not 5+5+5+2).
    let threads = threads.max(1).min((trials as usize).max(1));
    let base = trials as usize / threads;
    let extra = trials as usize % threads;
    let mut results: Vec<Option<T>> = (0..trials).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut rest: &mut [Option<T>] = &mut results;
        let mut start = 0u64;
        for t in 0..threads {
            let size = base + usize::from(t < extra);
            let (chunk, tail) = rest.split_at_mut(size);
            rest = tail;
            let run = &run;
            let first = start;
            scope.spawn(move || {
                for (i, slot) in chunk.iter_mut().enumerate() {
                    *slot = Some(run(first + i as u64));
                }
            });
            start += size as u64;
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("all slots filled"))
        .collect()
}

/// Fans a grid of scenario specs across `threads` worker threads and
/// returns one result per spec, **in input order** — build the grid in
/// seed order and the aggregation is deterministic regardless of thread
/// scheduling (each run is itself a pure function of its spec).
///
/// This is the multi-spec generalization of [`parallel_trials`]: trials
/// vary only the seed of one spec, a sweep varies anything — protocol,
/// delivery delay, adversary — across one thread pool.
pub fn sweep(
    registry: &ProtocolRegistry,
    specs: &[ScenarioSpec],
    threads: usize,
) -> Vec<Result<RunReport, ScenarioError>> {
    parallel_trials(specs.len() as u64, threads, |i| {
        registry.run(&specs[i as usize])
    })
}

/// Renders a Markdown table.
pub fn md_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "| {} |", headers.join(" | "));
    let _ = writeln!(
        out,
        "|{}|",
        headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        let _ = writeln!(out, "| {} |", row.join(" | "));
    }
    out
}

/// The largest n the M2 grid runs: `BYZCLOCK_M2_MAX_N` if set, else
/// `default_cap`. The callers pick the cap by context: a standalone
/// `experiments m2` defaults to the full curve (512, committee cells
/// carrying the tail), while `all` caps at 64 so the every-table run
/// stays interactive — the full-GVSS families' per-beat cost grows ~n⁴
/// (n² messages × n² bytes each), so the largest full-coin cells
/// dominate any run that includes them. CI smokes the 128 slice by
/// exporting `BYZCLOCK_M2_MAX_N=128`.
pub fn m2_max_n(default_cap: usize) -> usize {
    std::env::var("BYZCLOCK_M2_MAX_N")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default_cap)
}

/// Least-squares slope of `ln(y)` against `ln(x)` — the fitted exponent
/// `b` of a power law `y = a·x^b`. The M2 grid prints this for the
/// committee column's bytes/beat curve (the committee family's headline
/// claim is that it stays sub-cubic where the full coin grows ~n⁴).
/// Returns `NaN` with fewer than two points or any non-positive
/// coordinate.
pub fn power_law_exponent(points: &[(f64, f64)]) -> f64 {
    if points.len() < 2 || points.iter().any(|&(x, y)| x <= 0.0 || y <= 0.0) {
        return f64::NAN;
    }
    let logs: Vec<(f64, f64)> = points.iter().map(|&(x, y)| (x.ln(), y.ln())).collect();
    let n = logs.len() as f64;
    let (sx, sy) = logs
        .iter()
        .fold((0.0, 0.0), |(sx, sy), &(x, y)| (sx + x, sy + y));
    let (mx, my) = (sx / n, sy / n);
    let (num, den) = logs.iter().fold((0.0, 0.0), |(num, den), &(x, y)| {
        (num + (x - mx) * (y - my), den + (x - mx) * (x - mx))
    });
    if den == 0.0 {
        f64::NAN
    } else {
        num / den
    }
}

/// Number of worker threads to use (respects `BYZCLOCK_THREADS`).
pub fn default_threads() -> usize {
    std::env::var("BYZCLOCK_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        })
}

/// Trials knob (respects `BYZCLOCK_TRIALS`), default `base`.
pub fn trials(base: u64) -> u64 {
    std::env::var("BYZCLOCK_TRIALS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(base)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[Some(10), Some(20), Some(30), None]);
        assert_eq!(s.trials, 4);
        assert_eq!(s.timeouts, 1);
        assert!((s.mean - 20.0).abs() < 1e-9);
        assert_eq!(s.p50, 20.0);
        assert_eq!(s.max, 30);
    }

    #[test]
    fn summary_all_timeouts() {
        let s = Summary::of(&[None, None]);
        assert_eq!(s.timeouts, 2);
        assert!(s.mean.is_nan());
        assert!(s.cell(100).contains("> 100"));
    }

    #[test]
    fn parallel_trials_are_seed_ordered() {
        let out = parallel_trials(17, 4, |seed| seed * 2);
        assert_eq!(out, (0..17).map(|s| s * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_trials_chunks_are_balanced_and_feed_every_thread() {
        // Every spawned thread must receive work whenever
        // trials >= threads, and chunk sizes may differ by at most one.
        for (trials, threads) in [(17u64, 4usize), (16, 4), (4, 4), (5, 4), (100, 7), (3, 8)] {
            let ids = parallel_trials(trials, threads, |_| std::thread::current().id());
            let mut counts = std::collections::HashMap::new();
            for id in &ids {
                *counts.entry(*id).or_insert(0usize) += 1;
            }
            let expected_workers = threads.min(trials as usize);
            assert_eq!(
                counts.len(),
                expected_workers,
                "{trials} trials / {threads} threads left a worker idle"
            );
            let min = counts.values().min().copied().unwrap();
            let max = counts.values().max().copied().unwrap();
            assert!(
                max - min <= 1,
                "{trials} trials / {threads} threads unbalanced: {min}..{max}"
            );
        }
    }

    #[test]
    fn sweep_preserves_spec_order_and_determinism() {
        let registry = byzclock::scenario::default_registry();
        let specs: Vec<ScenarioSpec> = (0..6)
            .map(|seed| {
                ScenarioSpec::new("two-clock", 4, 1)
                    .with_coin(byzclock::scenario::CoinSpec::perfect_oracle())
                    .with_delay(seed % 3) // mix lockstep and bounded delay
                    .with_seed(seed)
                    .with_budget(500)
            })
            .collect();
        let a = sweep(&registry, &specs, 3);
        let b = sweep(&registry, &specs, 1);
        assert_eq!(a.len(), specs.len());
        for ((ra, rb), spec) in a.iter().zip(&b).zip(&specs) {
            let ra = ra.as_ref().expect("spec runs");
            assert_eq!(ra, rb.as_ref().unwrap(), "thread count changed a report");
            assert_eq!(ra.spec, spec.to_string(), "results stay in input order");
        }
    }

    #[test]
    fn sweep_surfaces_per_spec_errors() {
        let registry = byzclock::scenario::default_registry();
        let specs = vec![
            ScenarioSpec::new("two-clock", 4, 1)
                .with_coin(byzclock::scenario::CoinSpec::perfect_oracle())
                .with_budget(300),
            ScenarioSpec::new("no-such-clock", 4, 1),
        ];
        let out = sweep(&registry, &specs, 2);
        assert!(out[0].is_ok());
        assert!(matches!(
            out[1],
            Err(byzclock::scenario::ScenarioError::UnknownProtocol { .. })
        ));
    }

    #[test]
    fn m2_max_n_prefers_the_env_knob_over_the_caller_cap() {
        // The knob is process-global env, so probe both directions in one
        // test body instead of racing parallel test threads over it.
        std::env::remove_var("BYZCLOCK_M2_MAX_N");
        assert_eq!(m2_max_n(512), 512, "unset env falls back to the cap");
        assert_eq!(m2_max_n(64), 64, "`all` hands in its interactive cap");
        std::env::set_var("BYZCLOCK_M2_MAX_N", "128");
        assert_eq!(m2_max_n(512), 128, "the CI knob wins over the cap");
        std::env::set_var("BYZCLOCK_M2_MAX_N", "not-a-number");
        assert_eq!(m2_max_n(256), 256, "garbage env falls back to the cap");
        std::env::remove_var("BYZCLOCK_M2_MAX_N");
    }

    #[test]
    fn power_law_exponent_recovers_known_slopes() {
        let quad: Vec<(f64, f64)> = [2.0f64, 8.0, 32.0, 128.0]
            .iter()
            .map(|&x| (x, 3.0 * x * x))
            .collect();
        assert!((power_law_exponent(&quad) - 2.0).abs() < 1e-9);
        let cubic: Vec<(f64, f64)> = [4.0f64, 16.0, 64.0]
            .iter()
            .map(|&x| (x, 0.5 * x * x * x))
            .collect();
        assert!((power_law_exponent(&cubic) - 3.0).abs() < 1e-9);
        assert!(power_law_exponent(&[(1.0, 1.0)]).is_nan());
        assert!(power_law_exponent(&[(1.0, 1.0), (0.0, 2.0)]).is_nan());
        assert!(power_law_exponent(&[(5.0, 1.0), (5.0, 2.0)]).is_nan());
    }

    #[test]
    fn md_table_shape() {
        let t = md_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert!(t.contains("| a | b |"));
        assert!(t.contains("| 1 | 2 |"));
        assert_eq!(t.lines().count(), 3);
    }
}
