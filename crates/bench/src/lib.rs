//! Measurement utilities for the reproduction harness.
//!
//! The `experiments` binary (see `src/bin/experiments.rs`) regenerates
//! every table and figure of the paper; this library holds the shared
//! plumbing: parallel Monte-Carlo trials, summary statistics, and Markdown
//! table rendering.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use byzclock::scenario::{ProtocolRegistry, RunReport, ScenarioError, ScenarioSpec};
use std::fmt::Write as _;

/// Summary statistics over convergence-time samples; `None` samples are
/// timeouts at the experiment's horizon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of trials.
    pub trials: usize,
    /// Trials that did not converge within the horizon.
    pub timeouts: usize,
    /// Mean over converged trials.
    pub mean: f64,
    /// Median over converged trials.
    pub p50: f64,
    /// 95th percentile over converged trials.
    pub p95: f64,
    /// Maximum over converged trials.
    pub max: u64,
}

impl Summary {
    /// Summarizes samples (`None` = timeout).
    pub fn of(samples: &[Option<u64>]) -> Summary {
        let mut ok: Vec<u64> = samples.iter().flatten().copied().collect();
        ok.sort_unstable();
        let timeouts = samples.len() - ok.len();
        if ok.is_empty() {
            return Summary {
                trials: samples.len(),
                timeouts,
                mean: f64::NAN,
                p50: f64::NAN,
                p95: f64::NAN,
                max: 0,
            };
        }
        let mean = ok.iter().map(|&x| x as f64).sum::<f64>() / ok.len() as f64;
        let pct = |q: f64| -> f64 {
            let idx = ((ok.len() as f64 - 1.0) * q).round() as usize;
            ok[idx] as f64
        };
        Summary {
            trials: samples.len(),
            timeouts,
            mean,
            p50: pct(0.5),
            p95: pct(0.95),
            max: *ok.last().expect("nonempty"),
        }
    }

    /// Compact cell text: `mean (p95)`, with a timeout annotation.
    pub fn cell(&self, horizon: u64) -> String {
        if self.timeouts == self.trials {
            return format!("> {horizon} (all {} timed out)", self.trials);
        }
        let mut s = format!("{:.1} (p95 {:.0})", self.mean, self.p95);
        if self.timeouts > 0 {
            let _ = write!(s, " [{}/{} > {horizon}]", self.timeouts, self.trials);
        }
        s
    }
}

/// Runs `trials` seeded trials in parallel (scoped threads) and returns
/// the results in seed order. `run` must be deterministic in the seed.
pub fn parallel_trials<T, F>(trials: u64, threads: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    let threads = threads.max(1);
    let chunk_size = (trials as usize / threads).max(1) + 1;
    let mut results: Vec<Option<T>> = (0..trials).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (chunk_idx, chunk) in results.chunks_mut(chunk_size).enumerate() {
            let run = &run;
            let base = (chunk_idx * chunk_size) as u64;
            scope.spawn(move || {
                for (i, slot) in chunk.iter_mut().enumerate() {
                    *slot = Some(run(base + i as u64));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("all slots filled"))
        .collect()
}

/// Fans a grid of scenario specs across `threads` worker threads and
/// returns one result per spec, **in input order** — build the grid in
/// seed order and the aggregation is deterministic regardless of thread
/// scheduling (each run is itself a pure function of its spec).
///
/// This is the multi-spec generalization of [`parallel_trials`]: trials
/// vary only the seed of one spec, a sweep varies anything — protocol,
/// delivery delay, adversary — across one thread pool.
pub fn sweep(
    registry: &ProtocolRegistry,
    specs: &[ScenarioSpec],
    threads: usize,
) -> Vec<Result<RunReport, ScenarioError>> {
    parallel_trials(specs.len() as u64, threads, |i| {
        registry.run(&specs[i as usize])
    })
}

/// Renders a Markdown table.
pub fn md_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "| {} |", headers.join(" | "));
    let _ = writeln!(
        out,
        "|{}|",
        headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        let _ = writeln!(out, "| {} |", row.join(" | "));
    }
    out
}

/// Number of worker threads to use (respects `BYZCLOCK_THREADS`).
pub fn default_threads() -> usize {
    std::env::var("BYZCLOCK_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        })
}

/// Trials knob (respects `BYZCLOCK_TRIALS`), default `base`.
pub fn trials(base: u64) -> u64 {
    std::env::var("BYZCLOCK_TRIALS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(base)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[Some(10), Some(20), Some(30), None]);
        assert_eq!(s.trials, 4);
        assert_eq!(s.timeouts, 1);
        assert!((s.mean - 20.0).abs() < 1e-9);
        assert_eq!(s.p50, 20.0);
        assert_eq!(s.max, 30);
    }

    #[test]
    fn summary_all_timeouts() {
        let s = Summary::of(&[None, None]);
        assert_eq!(s.timeouts, 2);
        assert!(s.mean.is_nan());
        assert!(s.cell(100).contains("> 100"));
    }

    #[test]
    fn parallel_trials_are_seed_ordered() {
        let out = parallel_trials(17, 4, |seed| seed * 2);
        assert_eq!(out, (0..17).map(|s| s * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sweep_preserves_spec_order_and_determinism() {
        let registry = byzclock::scenario::default_registry();
        let specs: Vec<ScenarioSpec> = (0..6)
            .map(|seed| {
                ScenarioSpec::new("two-clock", 4, 1)
                    .with_coin(byzclock::scenario::CoinSpec::perfect_oracle())
                    .with_delay(seed % 3) // mix lockstep and bounded delay
                    .with_seed(seed)
                    .with_budget(500)
            })
            .collect();
        let a = sweep(&registry, &specs, 3);
        let b = sweep(&registry, &specs, 1);
        assert_eq!(a.len(), specs.len());
        for ((ra, rb), spec) in a.iter().zip(&b).zip(&specs) {
            let ra = ra.as_ref().expect("spec runs");
            assert_eq!(ra, rb.as_ref().unwrap(), "thread count changed a report");
            assert_eq!(ra.spec, spec.to_string(), "results stay in input order");
        }
    }

    #[test]
    fn sweep_surfaces_per_spec_errors() {
        let registry = byzclock::scenario::default_registry();
        let specs = vec![
            ScenarioSpec::new("two-clock", 4, 1)
                .with_coin(byzclock::scenario::CoinSpec::perfect_oracle())
                .with_budget(300),
            ScenarioSpec::new("no-such-clock", 4, 1),
        ];
        let out = sweep(&registry, &specs, 2);
        assert!(out[0].is_ok());
        assert!(matches!(
            out[1],
            Err(byzclock::scenario::ScenarioError::UnknownProtocol { .. })
        ));
    }

    #[test]
    fn md_table_shape() {
        let t = md_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert!(t.contains("| a | b |"));
        assert!(t.contains("| 1 | 2 |"));
        assert_eq!(t.lines().count(), 3);
    }
}
