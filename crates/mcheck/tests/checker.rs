//! Checker-level integration tests: the seeded-bug canary, trace
//! serialization, and the window=1 jump-rule trap the checker discovered.
//!
//! The exhaustive *verification* runs (hundreds of thousands of states)
//! live in the release-mode `model-check` CLI and its CI smoke job; the
//! tests here stay debug-mode fast by checking the small models whole and
//! the big one through a hand-pinned witness.

use byzclock_core::scenario::RunReport;
use byzclock_mcheck::{check, replay, BdModel, Model, Trace, TraceStep, TwoClockModel};
use byzclock_mcheck::{ViolationKind, MODEL_NAMES};

/// Satellite canary: re-break the PR 5 dedup bug (duplicate-sender slots
/// reaching the counting core) and assert the explorer finds it and
/// minimizes the counterexample.
#[test]
fn canary_broken_dedup_caught_with_minimal_counterexample() {
    let broken = TwoClockModel::broken(4, 1);
    let report = check(&broken, 1 << 20);
    assert!(report.complete, "tiny model must be fully explored");
    let v = report
        .violation
        .as_ref()
        .expect("the seeded dedup bug must be caught");
    assert_eq!(v.kind, ViolationKind::Convergence);
    // BFS explores layers in order, so the witness prefix is minimal —
    // the double-vote traps an *initial* state, and the trace says so
    // with zero steps rather than a meandering path.
    assert_eq!(v.trace.len(), 0, "witness must be minimal: {}", v.trace);
    assert!(
        v.detail.contains("Dup"),
        "diagnosis should name the duplicate-sender letter: {}",
        v.detail
    );
    // The witness replays through the real (broken) core.
    replay(&broken, &v.trace).expect("counterexample must replay");
}

/// The honest stack, same parameters, verifies clean — the dedup seam is
/// exactly what separates the two verdicts.
#[test]
fn honest_two_clock_verifies_where_broken_fails() {
    let report = check(&TwoClockModel::honest(4, 1), 1 << 20);
    assert!(report.verified(), "{:?}", report.violation);
    assert!(report.persistent_states >= 2); // all-0 and all-1 keep ticking
    assert!(report.max_rank_beats <= report.bound_beats);
}

/// Satellite: traces serialize through the [`RunReport`] JSON machinery,
/// and `from_json ∘ to_json` is the identity on the rendered report.
#[test]
fn trace_report_json_round_trips() {
    // A synthetic trace with every field exercised (two steps, one
    // adversarial outcome) plus a real one from the canary.
    let synthetic = Trace {
        model: "two-clock n=4 f=1".to_string(),
        initial_state: "[Zero,Zero,One]".to_string(),
        steps: vec![
            TraceStep {
                choice: 7,
                outcome: 1,
                choice_label: "n0:- n1:VZero n2:Dup(One,One)".to_string(),
                adversarial_outcome: false,
                next_state: "[Zero,One,One]".to_string(),
            },
            TraceStep {
                choice: 0,
                outcome: 3,
                choice_label: "n0:- n1:- n2:-".to_string(),
                adversarial_outcome: true,
                next_state: "[Zero,Zero,Zero]".to_string(),
            },
        ],
    };
    let canary = check(&TwoClockModel::broken(4, 1), 1 << 20)
        .violation
        .expect("canary violation")
        .trace;
    for trace in [synthetic, canary] {
        let report = trace.to_report();
        let json = report.to_json();
        let back = RunReport::from_json(&json).expect("trace report must parse");
        assert_eq!(back.to_json(), json, "round-trip must be the identity");
        assert_eq!(back.beats, trace.len() as u64);
    }
    // The check verdict itself rides the same rails.
    let verdict = check(&TwoClockModel::honest(4, 1), 1 << 20).to_report();
    let back = RunReport::from_json(&verdict.to_json()).expect("verdict must parse");
    assert_eq!(back.to_json(), verdict.to_json());
}

/// The checker's own find (not a seeded bug): at `window = 1` every round
/// expires after a single beat, so the timeout-side rules (`jump_target`,
/// the rand-jump) fire before a quorum can ever accumulate. A Byzantine
/// node that plays fresh claims against a 2/1 round-split of the correct
/// nodes keeps `fresh_support > f` alive on whichever tag it needs, and
/// an adaptive choice of letters keeps the groups swapping rounds
/// forever, no matter the coin. The full exploration (`model-check
/// bd-clock --window=1`) reports this as *the* convergence violation; at
/// `window >= 2` the trap's fuel is gone (a round survives long enough
/// for the correct announcers alone to meet the quorum before any
/// timeout fires) and a 2M-state bounded sweep finds no violation.
///
/// The debug-mode test certifies the trap without the 300k-state
/// exploration: starting from the reported counterexample state it builds
/// a closed set `T` of unsynced states such that every member has an
/// adversary move whose **every** common-coin outcome stays in `T`. By
/// induction the adversary wins from anywhere in `T` under every coin
/// sequence — a hand-checkable certificate of non-convergence, driven
/// through the real `BdClock` core.
#[test]
fn window1_split_tag_trap_has_a_closed_winning_region() {
    let model = BdModel::new(1);
    let start = model
        .initial_states()
        .into_iter()
        .find(|s| {
            model.describe(s)
                == "n0(r0 w0 f000 [0,0,0,0])n1(r0 w0 f001 [0,0,0,0])\
                    n2(r2 w0 f001 [0,0,0,0]) if[0,0,0] ev[0000000000000000]"
        })
        .expect("the trap start is a corrupt image the model enumerates");
    let mut region = std::collections::BTreeSet::new();
    let mut work = vec![start];
    while let Some(state) = work.pop() {
        if !region.insert(state) {
            continue;
        }
        assert!(region.len() <= 64, "trap region should be small and closed");
        assert!(
            !model.is_synced(&state),
            "trap member must be unsynced: {}",
            model.describe(&state)
        );
        let menu = model.choices(&state);
        let trapping = menu
            .iter()
            .find(|c| c.common.iter().all(|o| !model.is_synced(o)))
            .unwrap_or_else(|| {
                panic!(
                    "every trap member needs an all-unsynced move: {}",
                    model.describe(&state)
                )
            });
        work.extend(trapping.common.iter().cloned());
    }
    // The region the greedy strategy certifies is the 9-state swap cycle.
    assert_eq!(region.len(), 9, "the certified winning region");
}

/// The CLI, the docs, and the checker agree on the model menu.
#[test]
fn model_names_cover_the_menu() {
    assert_eq!(MODEL_NAMES, ["two-clock", "clock-sync", "bd-clock"]);
}
