//! Keeps the prose honest: ARCHITECTURE.md's model-checking seam and the
//! README quickstart must track the checker that actually ships — the
//! model menu, the CLI spelling, the documented caveats, and the numbers
//! the cheap models can re-derive in a debug test run.

use byzclock_mcheck::{check, TwoClockModel, MODEL_NAMES};

fn repo_doc(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn architecture_documents_the_model_checking_seam() {
    let doc = repo_doc("ARCHITECTURE.md");
    assert!(
        doc.contains("## The model-checking seam"),
        "ARCHITECTURE.md lost the model-checking section"
    );
    for name in MODEL_NAMES {
        assert!(doc.contains(name), "section must name the `{name}` model");
    }
    // The crate exists in the crate map.
    assert!(
        doc.contains("byzclock-mcheck"),
        "crate map lost the checker"
    );
    // The design points the soundness story rests on.
    for needle in [
        "Canonicalization",
        "Covering alphabets",
        "under-approximation",
    ] {
        assert!(doc.contains(needle), "section lost its `{needle}` point");
    }
    // All four documented bd-clock caveats, by name.
    for caveat in ["equicast", "sender-uniform", "quiet faults", "future-beat"] {
        let hit = doc.to_lowercase().contains(caveat);
        assert!(hit, "bd-clock caveat `{caveat}` fell out of the docs");
    }
    // The window=1 finding stays on the record.
    assert!(
        doc.contains("window = 1") || doc.contains("window=1"),
        "the degenerate-window finding must stay documented"
    );
}

#[test]
fn readme_quickstart_spells_the_cli() {
    let readme = repo_doc("README.md");
    assert!(
        readme
            .contains("cargo run --release -p byzclock-bench --bin experiments -- model-check all"),
        "README quickstart lost the model-check line"
    );
}

/// The numbers quoted for the cheap model are re-derived, not trusted:
/// a checker change that moves them must update the prose.
#[test]
fn architecture_quotes_live_two_clock_numbers() {
    let doc = repo_doc("ARCHITECTURE.md");
    let report = check(&TwoClockModel::honest(4, 1), 1 << 20);
    assert!(report.verified());
    let states = format!("two-clock n=4 f=1 — {} states", report.states);
    assert!(
        doc.contains(&states),
        "ARCHITECTURE.md quotes stale two-clock numbers (live: {})",
        report.states
    );
    let rank = format!(
        "worst\nconvergence {} beats (bound {})",
        report.max_rank_beats, report.bound_beats
    );
    assert!(
        doc.replace('\n', " ").contains(&rank.replace('\n', " ")),
        "ARCHITECTURE.md quotes a stale two-clock rank (live: {} bound {})",
        report.max_rank_beats,
        report.bound_beats
    );
}
