//! The exhaustive explorer: BFS over canonicalized protocol states with a
//! closure (greatest-fixpoint) check and a max-min convergence-rank game.
//!
//! Terminology:
//!
//! - A **choice** is one adversary move (message contents, delivery
//!   schedule): the adversary commits to it *before* any coin is revealed
//!   (Remark 3.1's rushing adversary cannot see the current beat's coin).
//! - Within a choice, the **common** outcomes are the shared-coin draws
//!   (luck's moves); **adversarial** outcomes are coin assignments only a
//!   broken coin could produce (e.g. split per-node bits). Closure and
//!   reachability range over *all* outcomes; the convergence game lets
//!   luck pick only among the common ones.
//! - **Closure** is checked as a greatest fixpoint: the *persistent* set
//!   `P` is the largest subset of synced states all of whose successors
//!   (under every outcome) stay in `P`. Synced states outside `P` are
//!   *transient* — reported, but only an empty `P` (with synced states
//!   reachable) is a violation.
//! - **Convergence rank** is the value of the max-min game: the adversary
//!   maximizes, luck minimizes, target `P`. An infinite rank means some
//!   adversary traps the system under *every* coin sequence; a finite
//!   maximum is the measured worst case, compared against the model's
//!   claimed bound.

use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
// lint:allow(D1): state interning needs O(1) lookups; ids are assigned in
// BFS insertion order and the map itself is never iterated, so no
// HashMap ordering can reach a report.
use std::collections::HashMap;
use std::fmt::Debug;
use std::hash::Hash;

use crate::trace::{Trace, TraceStep};

/// Rank value meaning "the adversary can prevent convergence forever".
pub const RANK_INF: u32 = u32::MAX;

/// One adversary move and the coin outcomes available under it.
#[derive(Debug, Clone)]
pub struct Choice<S> {
    /// Human-readable description of the adversary move (letters sent,
    /// delivery schedule) — used in counterexample traces.
    pub label: String,
    /// Successor per common-coin outcome (luck's menu). Must be non-empty.
    pub common: Vec<S>,
    /// Successors only reachable under adversarial coin outcomes (e.g.
    /// split per-node bits). Closure must survive them; the convergence
    /// game ignores them.
    pub adversarial: Vec<S>,
}

/// A finite-state model of one protocol: canonical states plus the full
/// per-state menu of adversary choices, driven through the *real* core.
pub trait Model {
    /// Canonical (symmetry-reduced) joint state.
    type State: Clone + Eq + Hash + Ord + Debug;

    /// Model name as reported (e.g. `"two-clock"`).
    fn name(&self) -> String;

    /// Every state the checker must assume the system can wake up in.
    fn initial_states(&self) -> Vec<Self::State>;

    /// The complete menu of adversary choices from `state`. Each choice
    /// must offer at least one common outcome.
    fn choices(&self, state: &Self::State) -> Vec<Choice<Self::State>>;

    /// Whether `state` is in the synced set.
    fn is_synced(&self, state: &Self::State) -> bool;

    /// Claimed convergence bound, in *beats*.
    fn bound_beats(&self) -> u32;

    /// How many engine steps make up one protocol beat (phase-split models
    /// return > 1; ranks are divided by this before comparing to
    /// [`Model::bound_beats`]).
    fn rank_per_beat(&self) -> u32 {
        1
    }

    /// Human-readable rendering of `state` for traces and reports.
    fn describe(&self, state: &Self::State) -> String;

    /// Invariant every transition *out of a persistent state* must
    /// satisfy (e.g. the synced clock keeps ticking). Default: anything.
    fn synced_progress(&self, _from: &Self::State, _to: &Self::State) -> bool {
        true
    }
}

/// What went wrong, if anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// A reachable synced state can be forced back out of sync.
    Closure,
    /// A reachable state cannot reach sync (or not within the bound).
    Convergence,
    /// A persistent state's transition broke [`Model::synced_progress`].
    Progress,
}

impl std::fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ViolationKind::Closure => "closure",
            ViolationKind::Convergence => "convergence",
            ViolationKind::Progress => "progress",
        })
    }
}

/// A checked property failure with a minimal replayable trace.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which property failed.
    pub kind: ViolationKind,
    /// One-line diagnosis.
    pub detail: String,
    /// Shortest witness path from an initial state (BFS layers are
    /// explored in order, so the prefix up to the offending state is
    /// minimal).
    pub trace: Trace,
}

/// Everything [`check`] measured.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// [`Model::name`].
    pub model: String,
    /// `false` if exploration hit `max_states` — numbers below are then
    /// lower bounds and no verdict is issued.
    pub complete: bool,
    /// Reachable canonical states.
    pub states: usize,
    /// Total transitions enumerated (per choice × outcome).
    pub edges: u64,
    /// Reachable states satisfying [`Model::is_synced`].
    pub synced_states: usize,
    /// Size of the persistent (closure-witnessing) set `P`.
    pub persistent_states: usize,
    /// Synced but not persistent.
    pub transient_synced: usize,
    /// Worst finite convergence rank, in engine steps ([`RANK_INF`] if
    /// some state is trapped — that is also a violation).
    pub max_rank: u32,
    /// `max_rank` converted to beats (rounded up).
    pub max_rank_beats: u32,
    /// The model's claimed bound, in beats.
    pub bound_beats: u32,
    /// First (and most severe) property failure, if any.
    pub violation: Option<Violation>,
}

impl CheckReport {
    /// `true` when the model was fully explored and no property failed.
    pub fn verified(&self) -> bool {
        self.complete && self.violation.is_none()
    }

    /// Renders the verdict as a [`RunReport`] so `model-check --jsonl`
    /// speaks the same line format as every other harness command
    /// (`spec`, the sweep grids): `beats` carries the measured worst-case
    /// convergence, the counters land in `extras`, and a violation's
    /// witness is serialized separately via [`Trace::to_report`].
    ///
    /// [`RunReport`]: byzclock_core::scenario::RunReport
    pub fn to_report(&self) -> byzclock_core::scenario::RunReport {
        let mut spec = format!("mcheck model={}", self.model);
        if let Some(v) = &self.violation {
            use std::fmt::Write as _;
            let _ = write!(spec, " violation={} detail={}", v.kind, v.detail);
        }
        byzclock_core::scenario::RunReport {
            spec,
            beats: u64::from(self.max_rank_beats),
            converged_at: self.verified().then_some(u64::from(self.max_rank_beats)),
            measured_from: 0,
            final_clocks: Vec::new(),
            final_streak: 0,
            traffic: byzclock_core::scenario::TrafficSummary::default(),
            extras: vec![
                ("complete".to_string(), f64::from(u8::from(self.complete))),
                ("states".to_string(), self.states as f64),
                ("edges".to_string(), self.edges as f64),
                ("synced_states".to_string(), self.synced_states as f64),
                (
                    "persistent_states".to_string(),
                    self.persistent_states as f64,
                ),
                ("transient_synced".to_string(), self.transient_synced as f64),
                ("max_rank".to_string(), f64::from(self.max_rank)),
                ("max_rank_beats".to_string(), f64::from(self.max_rank_beats)),
                ("bound_beats".to_string(), f64::from(self.bound_beats)),
                (
                    "violation".to_string(),
                    f64::from(u8::from(self.violation.is_some())),
                ),
            ],
        }
    }
}

struct Explored<S> {
    // lint:allow(D1): lookup-only interning index; iteration never happens.
    index: HashMap<S, u32>,
    states: Vec<S>,
    preds: Vec<u32>, // u32::MAX for initial states
    /// Deduplicated successor ids per state (every choice, every outcome).
    succ_all: Vec<Vec<u32>>,
    /// Per state: concatenated common-outcome successor lists, one slice
    /// per (deduplicated) choice, delimited by `common_ends`.
    commons: Vec<Vec<u32>>,
    common_ends: Vec<Vec<u32>>,
    edges: u64,
    complete: bool,
}

fn intern<S: Clone + Eq + Hash>(
    s: &S,
    // lint:allow(D1): the interning index again; ids are insertion-ordered.
    index: &mut HashMap<S, u32>,
    states: &mut Vec<S>,
    preds: &mut Vec<u32>,
    pred: u32,
    queue: &mut VecDeque<u32>,
) -> u32 {
    match index.entry(s.clone()) {
        Entry::Occupied(e) => *e.get(),
        Entry::Vacant(e) => {
            let id = states.len() as u32;
            states.push(s.clone());
            preds.push(pred);
            queue.push_back(id);
            e.insert(id);
            id
        }
    }
}

fn explore<M: Model>(model: &M, max_states: usize) -> Explored<M::State> {
    let mut ex = Explored {
        // lint:allow(D1): lookup-only interning index.
        index: HashMap::new(),
        states: Vec::new(),
        preds: Vec::new(),
        succ_all: Vec::new(),
        commons: Vec::new(),
        common_ends: Vec::new(),
        edges: 0,
        complete: true,
    };
    let mut queue = VecDeque::new();
    for s0 in model.initial_states() {
        intern(
            &s0,
            &mut ex.index,
            &mut ex.states,
            &mut ex.preds,
            u32::MAX,
            &mut queue,
        );
    }

    while let Some(id) = queue.pop_front() {
        // Keep arrays aligned for every *discovered* state even when we
        // stop expanding: unexpanded frontier states get empty menus and
        // the run is marked incomplete (no verdict).
        while ex.succ_all.len() < id as usize {
            ex.succ_all.push(Vec::new());
            ex.commons.push(Vec::new());
            ex.common_ends.push(Vec::new());
        }
        if ex.states.len() > max_states {
            ex.complete = false;
            ex.succ_all.push(Vec::new());
            ex.commons.push(Vec::new());
            ex.common_ends.push(Vec::new());
            continue;
        }
        let state = ex.states[id as usize].clone();
        let mut all: Vec<u32> = Vec::new();
        let mut commons: Vec<u32> = Vec::new();
        let mut ends: Vec<u32> = Vec::new();
        let mut seen_sets: BTreeSet<Vec<u32>> = BTreeSet::new();
        for choice in model.choices(&state) {
            assert!(
                !choice.common.is_empty(),
                "{}: choice '{}' offers no common outcome",
                model.name(),
                choice.label
            );
            let mut set: Vec<u32> = choice
                .common
                .iter()
                .map(|t| {
                    intern(
                        t,
                        &mut ex.index,
                        &mut ex.states,
                        &mut ex.preds,
                        id,
                        &mut queue,
                    )
                })
                .collect();
            ex.edges += (choice.common.len() + choice.adversarial.len()) as u64;
            for t in &choice.adversarial {
                let tid = intern(
                    t,
                    &mut ex.index,
                    &mut ex.states,
                    &mut ex.preds,
                    id,
                    &mut queue,
                );
                all.push(tid);
            }
            all.extend_from_slice(&set);
            // Identical common-outcome sets contribute identically to the
            // rank game — keep one.
            set.sort_unstable();
            set.dedup();
            if seen_sets.insert(set.clone()) {
                commons.extend_from_slice(&set);
                ends.push(commons.len() as u32);
            }
        }
        all.sort_unstable();
        all.dedup();
        debug_assert_eq!(ex.succ_all.len(), id as usize);
        ex.succ_all.push(all);
        ex.commons.push(commons);
        ex.common_ends.push(ends);
    }
    while ex.succ_all.len() < ex.states.len() {
        ex.succ_all.push(Vec::new());
        ex.commons.push(Vec::new());
        ex.common_ends.push(Vec::new());
    }
    ex
}

/// Rebuilds the `(choice, outcome)` indices for the transition
/// `from -> to` by re-enumerating the model's menu — this *is* the replay:
/// the trace is only emitted if the real core reproduces every hop.
fn attribute<M: Model>(
    model: &M,
    from: &M::State,
    to: &M::State,
) -> Option<(usize, usize, String, bool)> {
    for (ci, choice) in model.choices(from).iter().enumerate() {
        for (oi, t) in choice
            .common
            .iter()
            .chain(choice.adversarial.iter())
            .enumerate()
        {
            if t == to {
                let adversarial = oi >= choice.common.len();
                return Some((ci, oi, choice.label.clone(), adversarial));
            }
        }
    }
    None
}

fn build_trace<M: Model>(model: &M, ex: &Explored<M::State>, path: &[u32]) -> Trace {
    let mut steps = Vec::new();
    for w in path.windows(2) {
        let (from, to) = (&ex.states[w[0] as usize], &ex.states[w[1] as usize]);
        let (choice, outcome, label, adversarial) = attribute(model, from, to)
            .expect("trace replay failed: explored edge not reproduced by the core");
        steps.push(TraceStep {
            choice,
            outcome,
            choice_label: label,
            adversarial_outcome: adversarial,
            next_state: model.describe(to),
        });
    }
    Trace {
        model: model.name(),
        initial_state: model.describe(&ex.states[path[0] as usize]),
        steps,
    }
}

/// Shortest path (list of state ids) from an initial state to `target`,
/// following BFS predecessors.
fn path_to<S>(ex: &Explored<S>, target: u32) -> Vec<u32> {
    let mut path = vec![target];
    let mut cur = target;
    while ex.preds[cur as usize] != u32::MAX {
        cur = ex.preds[cur as usize];
        path.push(cur);
    }
    path.reverse();
    path
}

/// Runs the full check: explore, closure fixpoint, progress, rank game.
pub fn check<M: Model>(model: &M, max_states: usize) -> CheckReport {
    let ex = explore(model, max_states);
    let n = ex.states.len();
    let synced: Vec<bool> = ex.states.iter().map(|s| model.is_synced(s)).collect();
    let synced_count = synced.iter().filter(|&&b| b).count();

    let mut report = CheckReport {
        model: model.name(),
        complete: ex.complete,
        states: n,
        edges: ex.edges,
        synced_states: synced_count,
        persistent_states: 0,
        transient_synced: 0,
        max_rank: 0,
        max_rank_beats: 0,
        bound_beats: model.bound_beats(),
        violation: None,
    };
    if !ex.complete {
        return report; // inconclusive: no verdict on a truncated graph
    }

    // Closure: greatest fixpoint of "synced and all successors persist".
    let mut in_p: Vec<bool> = synced.clone();
    loop {
        let mut changed = false;
        for s in 0..n {
            if in_p[s] && ex.succ_all[s].iter().any(|&t| !in_p[t as usize]) {
                in_p[s] = false;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let p_count = in_p.iter().filter(|&&b| b).count();
    report.persistent_states = p_count;
    report.transient_synced = synced_count - p_count;

    if synced_count > 0 && p_count == 0 {
        // Every synced state can be forced back out — demonstrate it:
        // shortest path to the first synced state, then the shortest
        // escape (which exists for every state removed from the fixpoint).
        let first = (0..n).find(|&s| synced[s]).expect("synced_count > 0") as u32;
        let mut path = path_to(&ex, first);
        let mut bfs = VecDeque::from([first]);
        let mut from: BTreeMap<u32, u32> = BTreeMap::from([(first, u32::MAX)]);
        let mut exit = None;
        'escape: while let Some(s) = bfs.pop_front() {
            for &t in &ex.succ_all[s as usize] {
                if let std::collections::btree_map::Entry::Vacant(e) = from.entry(t) {
                    e.insert(s);
                    if !synced[t as usize] {
                        exit = Some(t);
                        break 'escape;
                    }
                    bfs.push_back(t);
                }
            }
        }
        let exit = exit.expect("empty persistent set implies an escape path");
        let mut tail = vec![exit];
        let mut cur = exit;
        while from[&cur] != u32::MAX {
            cur = from[&cur];
            tail.push(cur);
        }
        tail.pop(); // `first` is already the last element of `path`
        tail.reverse();
        path.extend(tail);
        report.violation = Some(Violation {
            kind: ViolationKind::Closure,
            detail: format!(
                "{} synced states are reachable but none is persistent: \
                 the adversary can force every one of them back out of sync",
                synced_count
            ),
            trace: build_trace(model, &ex, &path),
        });
        return report;
    }

    // Progress: persistent transitions must respect the model's invariant.
    for (s, &inside) in in_p.iter().enumerate().take(n) {
        if !inside {
            continue;
        }
        for &t in &ex.succ_all[s] {
            if !model.synced_progress(&ex.states[s], &ex.states[t as usize]) {
                let mut path = path_to(&ex, s as u32);
                path.push(t);
                report.violation = Some(Violation {
                    kind: ViolationKind::Progress,
                    detail: format!(
                        "persistent state {} has a transition violating synced progress",
                        model.describe(&ex.states[s])
                    ),
                    trace: build_trace(model, &ex, &path),
                });
                return report;
            }
        }
    }

    // Convergence: value iteration for the max-min rank game to `P`.
    // Sweeping until stable converges to the true game value on a finite
    // graph: after k sweeps every state luck can force into `P` within k
    // steps holds a finite rank, and trapped cycles stay at RANK_INF.
    let mut rank: Vec<u32> = (0..n).map(|s| if in_p[s] { 0 } else { RANK_INF }).collect();
    loop {
        let mut changed = false;
        for s in 0..n {
            if in_p[s] {
                continue;
            }
            let mut worst = 0u32;
            let mut start = 0usize;
            for &end in &ex.common_ends[s] {
                let best = ex.commons[s][start..end as usize]
                    .iter()
                    .map(|&t| rank[t as usize])
                    .min()
                    .expect("choice with empty common set");
                worst = worst.max(best.saturating_add(1));
                start = end as usize;
            }
            if worst < rank[s] {
                rank[s] = worst;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    if let Some(trapped) = (0..n).find(|&s| rank[s] == RANK_INF) {
        report.max_rank = RANK_INF;
        report.max_rank_beats = RANK_INF;
        // Name one trapping choice: a menu entry whose every common
        // outcome stays trapped.
        let state = &ex.states[trapped];
        let trapping = model
            .choices(state)
            .into_iter()
            .find(|c| {
                c.common
                    .iter()
                    .all(|t| rank[ex.index[t] as usize] == RANK_INF)
            })
            .map(|c| c.label)
            .unwrap_or_else(|| "?".into());
        report.violation = Some(Violation {
            kind: ViolationKind::Convergence,
            detail: format!(
                "state {} never converges: adversary move [{}] traps it under every coin",
                model.describe(state),
                trapping
            ),
            trace: build_trace(model, &ex, &path_to(&ex, trapped as u32)),
        });
        return report;
    }

    let max_rank = rank.iter().copied().max().unwrap_or(0);
    report.max_rank = max_rank;
    report.max_rank_beats = max_rank.div_ceil(model.rank_per_beat());
    if report.max_rank_beats > report.bound_beats {
        let worst = (0..n).find(|&s| rank[s] == max_rank).expect("max exists") as u32;
        report.violation = Some(Violation {
            kind: ViolationKind::Convergence,
            detail: format!(
                "measured worst-case convergence is {} beats, over the claimed bound of {}",
                report.max_rank_beats, report.bound_beats
            ),
            trace: build_trace(model, &ex, &path_to(&ex, worst)),
        });
    }
    report
}

/// Replays `trace` against `model` from scratch: re-resolves the initial
/// state by description, re-applies every `(choice, outcome)` index
/// through the real core, and checks each intermediate description.
/// Returns the final state on success.
pub fn replay<M: Model>(model: &M, trace: &Trace) -> Result<M::State, String> {
    let mut state = model
        .initial_states()
        .into_iter()
        .find(|s| model.describe(s) == trace.initial_state)
        .ok_or_else(|| format!("unknown initial state: {}", trace.initial_state))?;
    for (i, step) in trace.steps.iter().enumerate() {
        let menu = model.choices(&state);
        let choice = menu
            .get(step.choice)
            .ok_or_else(|| format!("step {i}: choice {} out of range", step.choice))?;
        let next = choice
            .common
            .iter()
            .chain(choice.adversarial.iter())
            .nth(step.outcome)
            .ok_or_else(|| format!("step {i}: outcome {} out of range", step.outcome))?;
        if model.describe(next) != step.next_state {
            return Err(format!(
                "step {i}: replay diverged: expected {}, core produced {}",
                step.next_state,
                model.describe(next)
            ));
        }
        state = next.clone();
    }
    Ok(state)
}
