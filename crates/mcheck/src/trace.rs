//! Replayable counterexample traces, exportable through the workspace's
//! [`RunReport`] JSON machinery so checker verdicts land in the same log
//! pipeline as simulation runs.

use byzclock_core::scenario::{RunReport, TrafficSummary};

/// One hop of a counterexample: which adversary choice and which coin
/// outcome were taken, plus the canonical state the real core produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStep {
    /// Index into [`crate::engine::Model::choices`] at the current state.
    pub choice: usize,
    /// Index into the chosen choice's outcomes (common first, then
    /// adversarial).
    pub outcome: usize,
    /// The choice's human-readable label (adversary letters, schedule).
    pub choice_label: String,
    /// Whether the outcome needed an adversarial (split) coin.
    pub adversarial_outcome: bool,
    /// Canonical description of the successor state.
    pub next_state: String,
}

/// A minimal replayable witness path: an initial state plus
/// `(choice, outcome)` indices that [`crate::engine::replay`] can re-apply
/// through the real protocol core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Model the trace belongs to.
    pub model: String,
    /// Canonical description of the starting state.
    pub initial_state: String,
    /// The hops, in order.
    pub steps: Vec<TraceStep>,
}

impl Trace {
    /// Number of engine steps in the witness.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` when the violation is already visible in the initial state.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Renders the trace as a [`RunReport`] so it serializes through the
    /// workspace's JSON pipeline. The `spec` line is a self-describing
    /// `mcheck-trace` record (model, initial state, per-step labels);
    /// the numeric `(choice, outcome)` indices ride in `extras`, so a
    /// parsed report still replays exactly.
    pub fn to_report(&self) -> RunReport {
        use std::fmt::Write as _;
        let mut spec = format!(
            "mcheck-trace model={} initial={}",
            self.model, self.initial_state
        );
        for (i, step) in self.steps.iter().enumerate() {
            let _ = write!(
                spec,
                " step{}=[{}]->{}",
                i, step.choice_label, step.next_state
            );
        }
        let mut extras = vec![("trace_steps".to_string(), self.steps.len() as f64)];
        for (i, step) in self.steps.iter().enumerate() {
            extras.push((format!("step{i}_choice"), step.choice as f64));
            extras.push((format!("step{i}_outcome"), step.outcome as f64));
            extras.push((
                format!("step{i}_adversarial"),
                f64::from(u8::from(step.adversarial_outcome)),
            ));
        }
        RunReport {
            spec,
            beats: self.steps.len() as u64,
            converged_at: None,
            measured_from: 0,
            final_clocks: Vec::new(),
            final_streak: 0,
            traffic: TrafficSummary::default(),
            extras,
        }
    }
}

impl std::fmt::Display for Trace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "initial: {}", self.initial_state)?;
        for (i, step) in self.steps.iter().enumerate() {
            writeln!(
                f,
                "  step {i}: adversary [{}]{} -> {}",
                step.choice_label,
                if step.adversarial_outcome {
                    " (split coin)"
                } else {
                    ""
                },
                step.next_state
            )?;
        }
        Ok(())
    }
}
