//! Small-model of `bd-clock` (the §6.3 bounded-delay clock), driven
//! through the real [`BdClock`] core via its snapshot/restore seam.
//!
//! # Canonical state
//!
//! The joint state is, per correct node, the mutable protocol state a
//! [`BdSnapshot`] captures — round, timeout age, send latches, wheel
//! support — plus one *shared* freshness-evidence table and the in-flight
//! correct bundles (window 2 only). Two exact reductions keep it finite:
//!
//! - **Relative ages.** Beat counters and claimed send beats are
//!   unbounded, but `fresh_support` only compares `beat - claimed`
//!   against the window. Evidence is therefore stored as an age class per
//!   `(tag, sender)`: fresh ages that can still matter (`1..window`) and
//!   absent — ages `>= window` never count again and only grow, and
//!   `note_evidence`'s max-merge makes dropping them exact. Every
//!   transition re-anchors ages to a fixed base beat.
//! - **Node symmetry.** The protocol is id-independent, so states are
//!   canonicalized to the lexicographic minimum over the `3! = 6`
//!   relabelings of the correct nodes (rows, in-flight slots, wheel
//!   sender bits, and evidence columns permuted together).
//!
//! # Byzantine alphabet
//!
//! The Byzantine node equicasts, per clock tag, one of: nothing; a
//! *fresh* claim (sent this beat); an *edge* claim (window 2 only: fresh
//! for exactly this beat's rules, stale afterwards); or a *stale* claim
//! (parks in the wheel — quorum support — without ever counting as fresh
//! evidence, since wheel ingest ignores claimed beats while
//! `fresh_support` reads them). These are the equivalence classes of a
//! *past* claimed beat under the protocol's two reads of a message (wheel
//! membership and freshness), so per tag the alphabet covers everything a
//! Byzantine sender can put on the wire this beat.
//!
//! # Soundness caveats (documented under-approximations)
//!
//! - **Equicast.** The Byzantine letter is broadcast: every correct node
//!   receives the same forged tags each beat (split sends are not
//!   enumerated).
//! - **Sender-uniform delays.** Under window 2 each correct sender's
//!   per-beat bundle is delayed as a unit — 0 or 1 beats to *all*
//!   recipients, the sender's own copy included — whereas the simulator
//!   draws a delay per envelope.
//! - **Quiet faults.** Initial states are the transient-fault images of
//!   the real `corrupt` with an empty network; bundles already in flight
//!   at the fault instant are not enumerated (every in-flight
//!   configuration arising *after* the fault is).
//! - **No future-beat claims.** The sim's `send_tagged` lets a Byzantine
//!   sender claim a beat that has not happened yet, creating evidence
//!   that stays fresh indefinitely. The model covers every *rule
//!   activation* such a claim enables (re-playing the fresh letter each
//!   beat keeps the same entry fresh), but not the states where that
//!   evidence outlives the sender's wheel entry without re-delivery.
//!
//! Together these keep all correct inboxes identical each beat — which is
//! what makes the shared evidence table exact and the state count
//! tractable.
//!
//! # What "progress" means here
//!
//! Unlike the lockstep layers, a synced bd-clock cluster does not tick
//! every beat: quorums ride the delay window and a transient fault can
//! leave a send latch that takes one beat to re-arm. The progress
//! property checked is therefore window-relative — a synced cluster stays
//! synced and its round never regresses or skips — while the convergence
//! rank bounds how long any state (stalls included) takes to reach the
//! persistent synced set.

use std::cell::RefCell;
// lint:allow(D1): the three memo caches below are lookup-only (insert +
// get, never iterated), so hash ordering cannot reach a report, and the
// bd-clock state space is too hot for ordered maps.
use std::collections::HashMap;

use byzclock_core::{BdClock, BdClockMsg, BdSnapshot, FixedRand};
use byzclock_sim::{collect_sends, Application, Envelope, NodeCfg, NodeId, SimRng};
use rand::SeedableRng;

use crate::engine::{Choice, Model};

const N: usize = 4;
const F: usize = 1;
const CORRECT: usize = 3;
const K: usize = 4;
/// Base beat every transition is re-anchored to (large enough that stale
/// claims stay non-negative).
const B0: u64 = 8;

const BYZ_ABSENT: u8 = 0;
const BYZ_FRESH: u8 = 1;
const BYZ_STALE: u8 = 2;
/// Window 2 only: fresh for this beat's rules, stale afterwards.
const BYZ_EDGE: u8 = 3;

fn byz_class_label(c: u8) -> &'static str {
    match c {
        BYZ_ABSENT => "-",
        BYZ_FRESH => "f",
        BYZ_STALE => "s",
        _ => "e",
    }
}

/// One correct node's mutable protocol state (the [`BdSnapshot`] image,
/// ages re-anchored, wheel as per-tag sender bitmasks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Row {
    /// Engine round index — the clock value.
    pub round: u8,
    /// Beats waited in the current round, clamped to the window (the only
    /// protocol read is `>= window`).
    pub bw: u8,
    /// Send latches: bit 0 `pending_send`, bit 1 `resend`, bit 2
    /// `last_send_cached`.
    pub flags: u8,
    /// `wheel[tag]` = bitmask of senders buffered for that tag.
    pub wheel: [u8; K],
}

/// Shared freshness-evidence table: `[tag][sender]` age class (0 absent,
/// `1..window` beats old; anything older can never count as fresh again
/// and is dropped by the canonicalizer). Shared across nodes
/// because every correct node sees the identical inbox each beat (see the
/// module docs) and evidence is never cleared outside `corrupt`.
pub type Evidence = [[u8; N]; K];

/// Canonical joint state: three correct rows, their in-flight bundles,
/// and the shared evidence table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BdState {
    /// Per-node protocol rows (node order is canonicalized, not sorted —
    /// the in-flight slots are tied to sender identity).
    pub rows: [Row; CORRECT],
    /// Per-sender in-flight bundle (window 2): `base tag + 1`, or 0 for
    /// none.
    pub inflight: [u8; CORRECT],
    /// The shared evidence table.
    pub ev: Evidence,
}

const PERMS: [[usize; 3]; 6] = [
    [0, 1, 2],
    [0, 2, 1],
    [1, 0, 2],
    [1, 2, 0],
    [2, 0, 1],
    [2, 1, 0],
];

fn remap_mask(mask: u8, perm: &[usize; 3]) -> u8 {
    let mut out = mask & 0b1000; // the Byzantine bit stays put
    for (new, &old) in perm.iter().enumerate() {
        if mask & (1 << old) != 0 {
            out |= 1 << new;
        }
    }
    out
}

fn apply_perm(s: &BdState, perm: &[usize; 3]) -> BdState {
    let mut rows = [s.rows[0]; CORRECT];
    let mut inflight = [0u8; CORRECT];
    for (new, &old) in perm.iter().enumerate() {
        let mut r = s.rows[old];
        for slot in r.wheel.iter_mut() {
            *slot = remap_mask(*slot, perm);
        }
        rows[new] = r;
        inflight[new] = s.inflight[old];
    }
    let mut ev = [[0u8; N]; K];
    for (tag, slot) in s.ev.iter().enumerate() {
        for (new, &old) in perm.iter().enumerate() {
            ev[tag][new] = slot[old];
        }
        ev[tag][CORRECT] = slot[CORRECT];
    }
    BdState { rows, inflight, ev }
}

fn canon(s: &BdState) -> BdState {
    PERMS
        .iter()
        .map(|p| apply_perm(s, p))
        .min()
        .expect("six permutations")
}

/// One inbox entry: `(sender, tag, claimed send beat)` — the full wire
/// content of a `bd-clock` beat, since payloads are `()`.
type InboxEntry = (u8, u8, u64);

/// Exhaustive model of `bd-clock` at `n = 4, f = 1, k = 4`.
#[derive(Debug)]
pub struct BdModel {
    window: u64,
    bound: u32,
    /// Interns each distinct joint inbox so the hot step cache below keys
    /// on a small fixed-size id instead of re-hashing the entry list.
    // lint:allow(D1): lookup-only memo cache, never iterated.
    inbox_ids: RefCell<HashMap<Vec<InboxEntry>, u32>>,
    /// `(pre-row, evidence, inbox id, coin)` → `(post-row, evidence')`.
    /// Valid across nodes and states: `deliver` ignores `e.to` and the
    /// spin-up is deterministic.
    #[allow(clippy::type_complexity)]
    // lint:allow(D1): lookup-only memo cache, never iterated.
    step_cache: RefCell<HashMap<(Row, Evidence, u32, bool), (Row, Evidence)>>,
    /// Pre-row → the bundle base tag this node broadcasts this beat (if
    /// its send latches fire). Sends never read the evidence table.
    // lint:allow(D1): lookup-only memo cache, never iterated.
    bundle_cache: RefCell<HashMap<Row, Option<u8>>>,
}

impl BdModel {
    /// Builds the model for a delivery window of 1 or 2 beats.
    ///
    /// # Panics
    ///
    /// Panics if `window` is not 1 or 2 (the exhaustive menus are sized
    /// for the issue's `window <= 2` scope).
    pub fn new(window: u64) -> Self {
        assert!(
            (1..=2).contains(&window),
            "bd-clock model covers window 1 and 2"
        );
        BdModel {
            window,
            // Placeholder bounds; tightened to the measured worst case in
            // the CLI/tests via `with_bound`.
            bound: if window == 1 { 8 } else { 10 },
            // lint:allow(D1): lookup-only memo caches, never iterated.
            inbox_ids: RefCell::new(HashMap::new()),
            // lint:allow(D1): lookup-only memo caches, never iterated.
            step_cache: RefCell::new(HashMap::new()),
            // lint:allow(D1): lookup-only memo caches, never iterated.
            bundle_cache: RefCell::new(HashMap::new()),
        }
    }

    /// Overrides the claimed convergence bound (beats).
    pub fn with_bound(mut self, bound: u32) -> Self {
        self.bound = bound;
        self
    }

    fn spin_up(&self, row: &Row, ev: &Evidence) -> (BdClock<FixedRand>, FixedRand) {
        let handle = FixedRand::new();
        let mut node = BdClock::new(
            NodeCfg::new(NodeId::new(0), N, F),
            K as u64,
            self.window,
            handle.clone(),
        );
        let mut wheel = Vec::new();
        for (tag, &mask) in row.wheel.iter().enumerate() {
            for s in 0..N {
                if mask & (1 << s) != 0 {
                    wheel.push((tag, NodeId::new(s as u16)));
                }
            }
        }
        let mut evidence = Vec::new();
        for (tag, slot) in ev.iter().enumerate() {
            for (s, &class) in slot.iter().enumerate() {
                if class != 0 {
                    evidence.push((tag, NodeId::new(s as u16), claimed_of(class)));
                }
            }
        }
        node.mc_restore(&BdSnapshot {
            round: usize::from(row.round),
            beats_waiting: u64::from(row.bw),
            pending_send: row.flags & 1 != 0,
            resend: row.flags & 2 != 0,
            last_send_cached: row.flags & 4 != 0,
            wheel,
            evidence,
            beat: B0,
        });
        (node, handle)
    }

    /// The bundle base tag `row` broadcasts this beat, if its send
    /// latches fire (the full bundle is `base .. base + window - 1`).
    fn bundle_of(&self, row: &Row, ev: &Evidence) -> Option<u8> {
        if let Some(&b) = self.bundle_cache.borrow().get(row) {
            return b;
        }
        let (mut node, _) = self.spin_up(row, ev);
        let mut rng = SimRng::seed_from_u64(0);
        let sends = collect_sends(&mut node, 0, &mut rng);
        let base = sends.first().map(|(_, m)| m.round);
        self.bundle_cache.borrow_mut().insert(*row, base);
        base
    }

    /// One full beat of one node through the real core: send (latch
    /// effects), deliver `inbox` under coin `bit`, snapshot, re-anchor
    /// ages.
    fn step_node(
        &self,
        row: &Row,
        ev: &Evidence,
        inbox: &[InboxEntry],
        inbox_id: u32,
        bit: bool,
    ) -> (Row, Evidence) {
        let key = (*row, *ev, inbox_id, bit);
        if let Some(out) = self.step_cache.borrow().get(&key) {
            return *out;
        }
        let (mut node, handle) = self.spin_up(row, ev);
        handle.set(bit);
        let mut rng = SimRng::seed_from_u64(0);
        let _ = collect_sends(&mut node, 0, &mut rng);
        let envelopes: Vec<Envelope<BdClockMsg>> = inbox
            .iter()
            .map(|&(from, tag, claimed)| Envelope {
                from: NodeId::new(u16::from(from)),
                to: NodeId::new(0),
                round: claimed,
                msg: BdClockMsg {
                    round: tag,
                    msg: (),
                },
            })
            .collect();
        node.deliver(0, &envelopes, &mut rng);
        let snap = node.mc_snapshot();
        debug_assert_eq!(snap.beat, B0 + 1);
        let mut wheel = [0u8; K];
        for &(tag, from) in &snap.wheel {
            wheel[tag] |= 1 << from.index();
        }
        let mut ev_out = [[0u8; N]; K];
        for &(tag, from, claimed) in &snap.evidence {
            if let Some(class) = class_of(claimed, self.window) {
                ev_out[tag][from.index()] = class;
            }
        }
        let out = (
            Row {
                round: snap.round as u8,
                bw: snap.beats_waiting.min(self.window) as u8,
                flags: u8::from(snap.pending_send)
                    | (u8::from(snap.resend) << 1)
                    | (u8::from(snap.last_send_cached) << 2),
                wheel,
            },
            ev_out,
        );
        self.step_cache.borrow_mut().insert(key, out);
        out
    }

    /// Interns a joint inbox, returning a dense id for the step cache.
    fn intern_inbox(&self, inbox: &[InboxEntry]) -> u32 {
        let mut ids = self.inbox_ids.borrow_mut();
        if let Some(&id) = ids.get(inbox) {
            return id;
        }
        let id = ids.len() as u32;
        ids.insert(inbox.to_vec(), id);
        id
    }

    fn byz_classes(&self) -> &'static [u8] {
        if self.window == 1 {
            // Edge collapses onto stale under window 1 (never fresh).
            &[BYZ_ABSENT, BYZ_FRESH, BYZ_STALE]
        } else {
            &[BYZ_ABSENT, BYZ_FRESH, BYZ_STALE, BYZ_EDGE]
        }
    }
}

/// Restored claimed beat for a stored age class (anchor [`B0`]).
fn claimed_of(class: u8) -> u64 {
    B0 - u64::from(class)
}

/// Stored age class for a snapshotted claimed beat, or `None` when the
/// entry can never count as fresh again (exact to drop: ages only grow
/// and `note_evidence` max-merges claims).
fn class_of(claimed: u64, window: u64) -> Option<u8> {
    debug_assert!(claimed <= B0, "no future claims in the modeled alphabet");
    let age = B0 + 1 - claimed;
    (age < window).then_some(age as u8)
}

/// Arrival claimed beat for a Byzantine letter class.
fn byz_claimed(class: u8) -> u64 {
    match class {
        BYZ_FRESH => B0,
        BYZ_EDGE => B0 - 1,
        _ => 0, // stale: far past, under every cutoff
    }
}

impl Model for BdModel {
    type State = BdState;

    fn name(&self) -> String {
        format!("bd-clock n={N} f={F} k={K} window={}", self.window)
    }

    fn initial_states(&self) -> Vec<BdState> {
        // The transient-fault image of `corrupt`: round/timer/latches
        // scrambled, buffers and evidence cleared, send cache dropped, no
        // bundles in flight (see the module-docs caveat).
        let mut rows = Vec::new();
        for round in 0..K as u8 {
            for bw in 0..=self.window as u8 {
                for flags in 0..4u8 {
                    rows.push(Row {
                        round,
                        bw,
                        flags, // cached bit stays 0: corrupt drops the cache
                        wheel: [0u8; K],
                    });
                }
            }
        }
        let mut out = Vec::new();
        for a in &rows {
            for b in &rows {
                for c in &rows {
                    out.push(canon(&BdState {
                        rows: [*a, *b, *c],
                        inflight: [0; CORRECT],
                        ev: [[0u8; N]; K],
                    }));
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    fn choices(&self, state: &BdState) -> Vec<Choice<BdState>> {
        let bundles: Vec<Option<u8>> = state
            .rows
            .iter()
            .map(|r| self.bundle_of(r, &state.ev))
            .collect();
        // Delay schedules: one bit per sender that actually broadcasts
        // this beat (window 1 delivers same-beat only).
        let delayable: Vec<usize> = if self.window >= 2 {
            (0..CORRECT).filter(|&s| bundles[s].is_some()).collect()
        } else {
            Vec::new()
        };
        let classes = self.byz_classes();
        let radix = classes.len();
        let mut out = Vec::new();
        for sched in 0..(1u32 << delayable.len()) {
            let mut delayed = [false; CORRECT];
            for (bit, &s) in delayable.iter().enumerate() {
                delayed[s] = sched & (1 << bit) != 0;
            }
            // Correct traffic under this schedule: last beat's delayed
            // bundles arrive now (claimed B0-1), undelayed bundles arrive
            // same-beat (claimed B0).
            let mut correct_part: Vec<InboxEntry> = Vec::new();
            for (s, &infl) in state.inflight.iter().enumerate() {
                if infl != 0 {
                    let base = infl - 1;
                    for j in 0..self.window as u8 {
                        correct_part.push((s as u8, (base + j) % K as u8, B0 - 1));
                    }
                }
            }
            for (s, (bundle, &dly)) in bundles.iter().zip(delayed.iter()).enumerate() {
                if let Some(base) = bundle {
                    if !dly {
                        for j in 0..self.window as u8 {
                            correct_part.push((s as u8, (base + j) % K as u8, B0));
                        }
                    }
                }
            }
            let mut inflight_next = [0u8; CORRECT];
            for ((slot, &dly), bundle) in inflight_next
                .iter_mut()
                .zip(delayed.iter())
                .zip(bundles.iter())
            {
                if dly {
                    if let Some(base) = bundle {
                        *slot = base + 1;
                    }
                }
            }
            let mut letter = [0usize; K];
            loop {
                let mut inbox = correct_part.clone();
                for (tag, &l) in letter.iter().enumerate() {
                    let class = classes[l];
                    if class != BYZ_ABSENT {
                        inbox.push((CORRECT as u8, tag as u8, byz_claimed(class)));
                    }
                }
                // Per-node successors for each coin bit; the evidence
                // update is coin-independent and shared across nodes.
                let inbox_id = self.intern_inbox(&inbox);
                let mut per_bit = [[state.rows[0]; CORRECT]; 2];
                let mut ev_next: Option<Evidence> = None;
                for (b, rows_out) in per_bit.iter_mut().enumerate() {
                    for (i, row) in state.rows.iter().enumerate() {
                        let (r, e) = self.step_node(row, &state.ev, &inbox, inbox_id, b == 1);
                        rows_out[i] = r;
                        if let Some(prev) = &ev_next {
                            debug_assert_eq!(*prev, e, "evidence must be shared");
                        }
                        ev_next = Some(e);
                    }
                }
                let ev_next = ev_next.expect("three nodes stepped");
                // Only nodes whose step actually reads the coin split the
                // outcome; everything else is assembled once.
                let varying: Vec<usize> = (0..CORRECT)
                    .filter(|&i| per_bit[0][i] != per_bit[1][i])
                    .collect();
                let assemble = |vbits: u32| {
                    let mut rows = per_bit[0];
                    for (pos, &i) in varying.iter().enumerate() {
                        if vbits & (1 << pos) != 0 {
                            rows[i] = per_bit[1][i];
                        }
                    }
                    canon(&BdState {
                        rows,
                        inflight: inflight_next,
                        ev: ev_next,
                    })
                };
                let full = (1u32 << varying.len()) - 1;
                let common = if varying.is_empty() {
                    vec![assemble(0)]
                } else {
                    vec![assemble(0), assemble(full)]
                };
                let adversarial: Vec<BdState> = (1..full).map(assemble).collect();
                let label = format!(
                    "byz=[{}] dly=[{}]",
                    letter
                        .iter()
                        .map(|&l| byz_class_label(classes[l]))
                        .collect::<Vec<_>>()
                        .join(""),
                    delayed
                        .iter()
                        .map(|&d| if d { '1' } else { '0' })
                        .collect::<String>(),
                );
                out.push(Choice {
                    label,
                    common,
                    adversarial,
                });
                // Next letter assignment (mixed radix over the tag classes).
                let mut t = K;
                loop {
                    if t == 0 {
                        break;
                    }
                    t -= 1;
                    letter[t] += 1;
                    if letter[t] < radix {
                        break;
                    }
                    letter[t] = 0;
                }
                if letter.iter().all(|&l| l == 0) {
                    break;
                }
            }
        }
        out
    }

    fn is_synced(&self, state: &BdState) -> bool {
        state.rows.iter().all(|r| r.round == state.rows[0].round)
    }

    fn bound_beats(&self) -> u32 {
        self.bound
    }

    fn describe(&self, state: &BdState) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for (i, r) in state.rows.iter().enumerate() {
            let _ = write!(
                s,
                "n{i}(r{} w{} f{:03b} [{},{},{},{}])",
                r.round, r.bw, r.flags, r.wheel[0], r.wheel[1], r.wheel[2], r.wheel[3]
            );
        }
        let _ = write!(
            s,
            " if[{},{},{}]",
            state.inflight[0], state.inflight[1], state.inflight[2]
        );
        let ev: String = state
            .ev
            .iter()
            .flat_map(|slot| slot.iter().map(|&c| char::from(b'0' + c)))
            .collect();
        let _ = write!(s, " ev[{ev}]");
        s
    }

    fn synced_progress(&self, from: &BdState, to: &BdState) -> bool {
        // Bd-clock progress is *window-relative*, not per-beat: a synced
        // beat may legally stall while a corrupted send latch re-arms
        // (`age()` only sets `resend`; the fresh send lands the next
        // beat) or while a quorum rides the delay window. The machine-
        // checked property is therefore: the cluster stays synced and
        // rounds never regress or skip — liveness to the synced set is
        // carried by the convergence rank.
        let same = from.rows[0].round;
        let next = (same + 1) % K as u8;
        to.rows.iter().all(|r| r.round == to.rows[0].round)
            && (to.rows[0].round == same || to.rows[0].round == next)
    }
}
