//! Small-model of `ss-Byz-2-Clock` (Fig. 2), driven through the real
//! [`TwoClock`] core.
//!
//! # Canonical state
//!
//! The joint state is the sorted multiset of the correct nodes' clock
//! trits. Sorting is a sound symmetry reduction: the protocol has no
//! id-dependent behavior (quorum counting and first-wins dedup are
//! permutation-equivariant) and the checker enumerates the Byzantine
//! letter for *every* recipient, so node orbits collapse.
//!
//! # Byzantine alphabet
//!
//! Per correct recipient and Byzantine sender, one of: silence, a vote of
//! each trit, or a *duplicate pair* (two envelopes from the same sender in
//! one beat). The duplicate letter is the interesting one: the honest
//! stack's first-wins dedup (`dedup_by_sender`) must make it equivalent to
//! its first vote. The alphabet is covering because the only protocol
//! input is the per-sender post-dedup vote — every wire behavior collapses
//! onto one of these letters.
//!
//! # The broken variant
//!
//! [`TwoClockModel::broken`] bypasses the dedup seam and feeds the
//! duplicate-sender slot straight into [`TwoClockCore::apply`] — the
//! "duplicate sender accepted" bug this repo once fixed. The checker is
//! expected to produce a minimal counterexample against it (see the
//! canary test), which is the evidence that the seam is load-bearing.

use byzclock_core::{FixedRand, Trit, TwoClock, TwoClockCore, TwoClockMsg};
use byzclock_sim::{Envelope, NodeCfg, NodeId, SimRng};
use rand::SeedableRng;

use crate::engine::{Choice, Model};

/// What one Byzantine sender puts on the wire to one recipient in one
/// beat.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ByzLetter {
    /// No message.
    Silent,
    /// A single clock vote.
    Vote(Trit),
    /// Two clock votes from the same sender (first-wins dedup must keep
    /// the first; the broken core counts both).
    Dup(Trit, Trit),
}

impl ByzLetter {
    fn label(&self) -> String {
        match self {
            ByzLetter::Silent => "-".into(),
            ByzLetter::Vote(t) => format!("V{t:?}"),
            ByzLetter::Dup(a, b) => format!("Dup({a:?},{b:?})"),
        }
    }
}

/// The per-(recipient, sender) alphabet enumerated by [`Model::choices`].
/// Covering: after the protocol's first-wins dedup the only input a
/// Byzantine sender controls is one post-dedup vote (or silence), and
/// every dup letter is included to certify the dedup seam itself — under
/// the honest stack `Dup(a, b) ≡ Vote(a)`, while a dedup-less core counts
/// both copies (`Dup(1,1)` is the double-vote that breaks quorums).
pub const LETTERS: [ByzLetter; 7] = [
    ByzLetter::Silent,
    ByzLetter::Vote(Trit::Zero),
    ByzLetter::Vote(Trit::One),
    ByzLetter::Vote(Trit::Bot),
    ByzLetter::Dup(Trit::One, Trit::Zero),
    ByzLetter::Dup(Trit::Zero, Trit::Zero),
    ByzLetter::Dup(Trit::One, Trit::One),
];

fn rank(t: Trit) -> u8 {
    match t {
        Trit::Zero => 0,
        Trit::One => 1,
        Trit::Bot => 2,
    }
}

fn unrank(r: u8) -> Trit {
    match r {
        0 => Trit::Zero,
        1 => Trit::One,
        _ => Trit::Bot,
    }
}

/// Exhaustive model of the 2-clock at small `(n, f)`.
#[derive(Debug, Clone)]
pub struct TwoClockModel {
    n: usize,
    f: usize,
    broken: bool,
    bound: u32,
}

impl TwoClockModel {
    /// The honest protocol (votes travel as envelopes through the real
    /// dedup seam).
    pub fn honest(n: usize, f: usize) -> Self {
        TwoClockModel {
            n,
            f,
            broken: false,
            bound: 3,
        }
    }

    /// The seeded-bug variant: duplicate-sender slots reach the counting
    /// core.
    pub fn broken(n: usize, f: usize) -> Self {
        TwoClockModel {
            broken: true,
            ..TwoClockModel::honest(n, f)
        }
    }

    /// Overrides the claimed convergence bound (beats).
    pub fn with_bound(mut self, bound: u32) -> Self {
        self.bound = bound;
        self
    }

    fn correct(&self) -> usize {
        self.n - self.f
    }

    /// One lockstep beat of the whole system, through the real cores.
    ///
    /// `state[i]` is correct node `i`'s clock, `letters[i]` the Byzantine
    /// letters addressed to it (one per Byzantine sender, ids
    /// `n-f..n`), `bits[i]` its coin draw this beat. Public so the
    /// lemma suite can *sample* larger parameters (e.g. `n=7, f=2`) that
    /// the exhaustive menu does not enumerate.
    pub fn step_joint(
        &self,
        state: &[Trit],
        letters: &[Vec<ByzLetter>],
        bits: &[bool],
    ) -> Vec<Trit> {
        let c = self.correct();
        assert_eq!(state.len(), c);
        assert_eq!(letters.len(), c);
        assert_eq!(bits.len(), c);
        let mut rng = SimRng::seed_from_u64(0);
        (0..c)
            .map(|i| {
                if self.broken {
                    self.step_node_broken(state, &letters[i], bits[i], i)
                } else {
                    self.step_node_honest(state, &letters[i], bits[i], i, &mut rng)
                }
            })
            .collect()
    }

    fn step_node_honest(
        &self,
        state: &[Trit],
        letters: &[ByzLetter],
        bit: bool,
        i: usize,
        rng: &mut SimRng,
    ) -> Trit {
        let me = NodeId::new(i as u16);
        let mut inbox: Vec<Envelope<TwoClockMsg<()>>> = Vec::new();
        for (j, &t) in state.iter().enumerate() {
            inbox.push(Envelope::new(
                NodeId::new(j as u16),
                me,
                TwoClockMsg::Clock(t),
            ));
        }
        for (b, letter) in letters.iter().enumerate() {
            let byz = NodeId::new((self.correct() + b) as u16);
            match *letter {
                ByzLetter::Silent => {}
                ByzLetter::Vote(t) => inbox.push(Envelope::new(byz, me, TwoClockMsg::Clock(t))),
                ByzLetter::Dup(a, b2) => {
                    inbox.push(Envelope::new(byz, me, TwoClockMsg::Clock(a)));
                    inbox.push(Envelope::new(byz, me, TwoClockMsg::Clock(b2)));
                }
            }
        }
        let handle = FixedRand::new();
        handle.set(bit);
        let mut node = TwoClock::new(NodeCfg::new(me, self.n, self.f), handle.clone());
        node.set_clock(state[i]);
        node.step_deliver(&inbox, rng);
        node.clock()
    }

    fn step_node_broken(&self, state: &[Trit], letters: &[ByzLetter], bit: bool, i: usize) -> Trit {
        let me = NodeId::new(i as u16);
        let mut votes: Vec<(NodeId, Trit)> = state
            .iter()
            .enumerate()
            .map(|(j, &t)| (NodeId::new(j as u16), t))
            .collect();
        for (b, letter) in letters.iter().enumerate() {
            let byz = NodeId::new((self.correct() + b) as u16);
            match *letter {
                ByzLetter::Silent => {}
                ByzLetter::Vote(t) => votes.push((byz, t)),
                // The bug under test: the duplicate-sender slot is
                // accepted, so one Byzantine node votes twice.
                ByzLetter::Dup(a, b2) => {
                    votes.push((byz, a));
                    votes.push((byz, b2));
                }
            }
        }
        let mut core = TwoClockCore::new(NodeCfg::new(me, self.n, self.f));
        core.set_clock(state[i]);
        core.apply(&votes, bit);
        core.clock()
    }

    fn canon(&self, clocks: &[Trit]) -> Vec<u8> {
        let mut v: Vec<u8> = clocks.iter().map(|&t| rank(t)).collect();
        v.sort_unstable();
        v
    }

    fn trits(&self, state: &[u8]) -> Vec<Trit> {
        state.iter().map(|&r| unrank(r)).collect()
    }
}

impl Model for TwoClockModel {
    type State = Vec<u8>;

    fn name(&self) -> String {
        if self.broken {
            format!("two-clock-broken n={} f={}", self.n, self.f)
        } else {
            format!("two-clock n={} f={}", self.n, self.f)
        }
    }

    fn initial_states(&self) -> Vec<Vec<u8>> {
        // Every sorted multiset over {0, 1, ⊥}: transient faults can leave
        // the correct nodes in any joint assignment.
        let c = self.correct();
        let mut out = Vec::new();
        let mut cur = vec![0u8; c];
        loop {
            out.push(cur.clone());
            // next non-decreasing vector over 0..=2
            let mut i = c;
            loop {
                if i == 0 {
                    return out;
                }
                i -= 1;
                if cur[i] < 2 {
                    cur[i] += 1;
                    let v = cur[i];
                    for x in cur[i + 1..].iter_mut() {
                        *x = v;
                    }
                    break;
                }
            }
        }
    }

    fn choices(&self, state: &Vec<u8>) -> Vec<Choice<Vec<u8>>> {
        let c = self.correct();
        let slots = c * self.f;
        let clocks = self.trits(state);
        let mut out = Vec::new();
        // Every assignment of a letter to each (recipient, byz sender)
        // slot: LETTERS.len()^slots choices.
        let mut pick = vec![0usize; slots];
        loop {
            let letters: Vec<Vec<ByzLetter>> = (0..c)
                .map(|i| (0..self.f).map(|b| LETTERS[pick[i * self.f + b]]).collect())
                .collect();
            let label = (0..c)
                .map(|i| {
                    let ls: Vec<String> = letters[i].iter().map(|l| l.label()).collect();
                    format!("n{i}:{}", ls.join("+"))
                })
                .collect::<Vec<_>>()
                .join(" ");
            let common = vec![
                self.canon(&self.step_joint(&clocks, &letters, &vec![false; c])),
                self.canon(&self.step_joint(&clocks, &letters, &vec![true; c])),
            ];
            let mut adversarial = Vec::new();
            for bits in 1..(1u32 << c) - 1 {
                let bv: Vec<bool> = (0..c).map(|i| bits & (1 << i) != 0).collect();
                adversarial.push(self.canon(&self.step_joint(&clocks, &letters, &bv)));
            }
            out.push(Choice {
                label,
                common,
                adversarial,
            });
            // next assignment
            let mut i = slots;
            loop {
                if i == 0 {
                    return out;
                }
                i -= 1;
                pick[i] += 1;
                if pick[i] < LETTERS.len() {
                    break;
                }
                pick[i] = 0;
            }
        }
    }

    fn is_synced(&self, state: &Vec<u8>) -> bool {
        state.iter().all(|&r| r == state[0]) && state[0] != rank(Trit::Bot)
    }

    fn bound_beats(&self) -> u32 {
        self.bound
    }

    fn describe(&self, state: &Vec<u8>) -> String {
        let parts: Vec<String> = state.iter().map(|&r| format!("{:?}", unrank(r))).collect();
        format!("[{}]", parts.join(","))
    }

    fn synced_progress(&self, from: &Vec<u8>, to: &Vec<u8>) -> bool {
        // A synced 2-clock alternates: all-0 -> all-1 -> all-0 -> …
        let next = rank(unrank(from[0]).flipped());
        to.iter().all(|&r| r == next)
    }
}
