//! `byzclock-mcheck` — exhaustive small-model checker for the PODC'08
//! clock stack.
//!
//! Where the rest of the workspace *samples* runs (random seeds, random
//! adversaries), this crate *enumerates* them: at tiny parameters
//! (`n = 4, f = 1`, small `k`, delivery window ≤ 2) it drives the real
//! protocol cores — [`TwoClock`](byzclock_core::TwoClock),
//! [`ClockSync`](byzclock_core::ClockSync), and
//! [`BdClock`](byzclock_core::BdClock) — through **every** combination of
//! Byzantine message content, coin outcome, and delivery schedule,
//! canonicalizes and hashes the joint states, and machine-checks
//!
//! - **closure** — a persistent synced set exists that no adversary move
//!   leaves, and
//! - **convergence** — from every reachable state, good coin luck reaches
//!   sync within the claimed beat bound no matter what the adversary does
//!   (the max-min game of Remark 3.1: the adversary commits each beat's
//!   messages before the coin is revealed).
//!
//! On a violation the checker emits a minimal replayable counterexample
//! ([`Trace`]) — see [`engine::replay`].
//!
//! # Example
//!
//! ```
//! use byzclock_mcheck::engine::check;
//! use byzclock_mcheck::two_clock::TwoClockModel;
//!
//! // Machine-verify Fig. 2 at n = 4, f = 1: every reachable state, every
//! // Byzantine letter, every coin.
//! let report = check(&TwoClockModel::honest(4, 1), 1 << 20);
//! assert!(report.verified(), "{:?}", report.violation);
//! assert!(report.persistent_states >= 2); // all-0 and all-1 stay synced
//!
//! // The seeded dedup bug is caught with a minimal counterexample.
//! let broken = check(&TwoClockModel::broken(4, 1), 1 << 20);
//! assert!(broken.violation.is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bd_clock;
pub mod clock_sync;
pub mod engine;
pub mod trace;
pub mod two_clock;

pub use bd_clock::BdModel;
pub use clock_sync::{FourClockModel, TopLayerModel};
pub use engine::{check, replay, CheckReport, Choice, Model, Violation, ViolationKind, RANK_INF};
pub use trace::{Trace, TraceStep};
pub use two_clock::TwoClockModel;

/// The protocol models the checker covers, as spelled on the
/// `model-check` CLI (and in the docs — the drift test greps for these).
pub const MODEL_NAMES: [&str; 3] = ["two-clock", "clock-sync", "bd-clock"];
