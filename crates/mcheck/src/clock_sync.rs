//! Small-models of `ss-Byz-Clock-Sync` (Fig. 4), mirroring the paper's
//! own proof structure: the composition is checked layer by layer, which
//! is sound because the top layer never feeds back into the 4-clock.
//!
//! - [`FourClockModel`] (layer A) machine-checks that the 4-clock of
//!   Fig. 3 converges and cycles `0 → 1 → 2 → 3` (Theorem 3's job). Each
//!   beat is split into **two engine steps** — the `A1` sub-beat and the
//!   gated `A2` sub-beat — because the rushing adversary chooses its `A2`
//!   letters *after* seeing `A1`'s coin; flattening the beat would
//!   under-approximate it.
//! - [`TopLayerModel`] (layer B) machine-checks the `k`-clock blocks
//!   (a)–(d) of Fig. 4 *assuming* a synced, cycling 4-clock (exactly what
//!   layer A establishes; Byzantine nodes cannot alter a synced 4-clock's
//!   transitions at `n = 4, f = 1` since every quorum is met by the three
//!   correct votes alone).
//!
//! Both models drive the real cores ([`FourClock`], [`ClockSync`])
//! through the model-checking restore hooks; transitions are computed by
//! replaying a node's full beat (all three send phases, then the phase-2
//! delivery) on a fresh instance. Per-node sequential execution is exact
//! for layer B: cross-node interaction happens only through the phase-2
//! broadcasts, which are captured before any delivery runs.

use byzclock_core::{
    ClockSync, ClockSyncMsg, FixedRand, FourClock, FourClockMsg, Trit, TwoClockMsg,
};
use byzclock_sim::{collect_sends, Application, Envelope, NodeCfg, NodeId, SimRng, Target};
use rand::SeedableRng;

use crate::engine::{Choice, Model};

const N: usize = 4;
const F: usize = 1;
const CORRECT: usize = 3;
const K: u8 = 4;

fn trit_rank(t: Trit) -> u8 {
    match t {
        Trit::Zero => 0,
        Trit::One => 1,
        Trit::Bot => 2,
    }
}

fn trit_unrank(r: u8) -> Trit {
    match r {
        0 => Trit::Zero,
        1 => Trit::One,
        _ => Trit::Bot,
    }
}

fn trit_name(r: u8) -> &'static str {
    ["0", "1", "⊥"][r as usize]
}

// ---------------------------------------------------------------------
// Layer A: the 4-clock
// ---------------------------------------------------------------------

/// Layer-A state: `phase` is 0 at beat boundaries and 1 between the `A1`
/// and `A2` sub-beats; each row is one correct node's `(a1, a2, gate)`
/// (trit ranks; `gate` is live only at phase 1 — a transient fault can
/// leave it inconsistent with `a1`, so it is part of the state — and
/// normalized to 0 at phase 0, where the protocol recomputes it before
/// the next read).
pub type FourState = (u8, Vec<(u8, u8, u8)>);

/// Byzantine letters for one sub-clock beat: silence or one vote (the
/// two-clock model separately certifies that duplicates collapse onto
/// these via first-wins dedup).
const SUB_LETTERS: [Option<Trit>; 4] = [None, Some(Trit::Zero), Some(Trit::One), Some(Trit::Bot)];

fn sub_letter_label(l: Option<Trit>) -> String {
    match l {
        None => "-".into(),
        Some(t) => format!("V{}", trit_name(trit_rank(t))),
    }
}

/// Exhaustive model of the 4-clock (Fig. 3) at `n = 4, f = 1`.
#[derive(Debug, Clone)]
pub struct FourClockModel {
    bound: u32,
}

impl FourClockModel {
    /// Builds the model with the default claimed convergence bound.
    pub fn new() -> Self {
        FourClockModel { bound: 6 }
    }

    /// Overrides the claimed convergence bound (beats).
    pub fn with_bound(mut self, bound: u32) -> Self {
        self.bound = bound;
        self
    }

    /// One `A1` sub-beat of node `i`, through the real [`FourClock`].
    fn step_a1(
        &self,
        rows: &[(u8, u8, u8)],
        i: usize,
        letter: Option<Trit>,
        bit: bool,
    ) -> (u8, u8, u8) {
        let me = NodeId::new(i as u16);
        let h1 = FixedRand::new();
        h1.set(bit);
        let mut four = FourClock::new(NodeCfg::new(me, N, F), h1.clone(), FixedRand::new());
        let (x, y, _) = rows[i];
        four.mc_set_state(trit_unrank(x), trit_unrank(y), false);
        let mut inbox: Vec<Envelope<FourClockMsg<()>>> = rows
            .iter()
            .enumerate()
            .map(|(j, &(xj, _, _))| {
                Envelope::new(
                    NodeId::new(j as u16),
                    me,
                    FourClockMsg::A1(TwoClockMsg::Clock(trit_unrank(xj))),
                )
            })
            .collect();
        if let Some(t) = letter {
            inbox.push(Envelope::new(
                NodeId::new(CORRECT as u16),
                me,
                FourClockMsg::A1(TwoClockMsg::Clock(t)),
            ));
        }
        let mut rng = SimRng::seed_from_u64(0);
        four.phase_deliver(0, &inbox, &mut rng);
        let x2 = trit_rank(four.a1().clock());
        // Fig. 3 line 2: the gate is clock(A1) after A1's beat.
        (x2, y, u8::from(x2 == 0))
    }

    /// One gated `A2` sub-beat of node `i`. Only nodes whose *own* gate
    /// is set send and deliver.
    fn step_a2(
        &self,
        rows: &[(u8, u8, u8)],
        i: usize,
        letter: Option<Trit>,
        bit: bool,
    ) -> (u8, u8, u8) {
        let me = NodeId::new(i as u16);
        let h2 = FixedRand::new();
        h2.set(bit);
        let mut four = FourClock::new(NodeCfg::new(me, N, F), FixedRand::new(), h2.clone());
        let (x, y, gate) = rows[i];
        four.mc_set_state(trit_unrank(x), trit_unrank(y), gate != 0);
        let mut inbox: Vec<Envelope<FourClockMsg<()>>> = rows
            .iter()
            .enumerate()
            .filter(|&(_, &(_, _, gj))| gj != 0)
            .map(|(j, &(_, yj, _))| {
                Envelope::new(
                    NodeId::new(j as u16),
                    me,
                    FourClockMsg::A2(TwoClockMsg::Clock(trit_unrank(yj))),
                )
            })
            .collect();
        if let Some(t) = letter {
            inbox.push(Envelope::new(
                NodeId::new(CORRECT as u16),
                me,
                FourClockMsg::A2(TwoClockMsg::Clock(t)),
            ));
        }
        let mut rng = SimRng::seed_from_u64(0);
        four.phase_deliver(1, &inbox, &mut rng);
        (x, trit_rank(four.a2().clock()), 0)
    }

    fn step_joint(
        &self,
        phase: u8,
        rows: &[(u8, u8, u8)],
        letters: &[Option<Trit>; CORRECT],
        bits: &[bool; CORRECT],
    ) -> FourState {
        let mut next: Vec<(u8, u8, u8)> = (0..CORRECT)
            .map(|i| {
                if phase == 0 {
                    self.step_a1(rows, i, letters[i], bits[i])
                } else {
                    self.step_a2(rows, i, letters[i], bits[i])
                }
            })
            .collect();
        next.sort_unstable();
        ((phase + 1) % 2, next)
    }
}

impl Default for FourClockModel {
    fn default() -> Self {
        FourClockModel::new()
    }
}

impl Model for FourClockModel {
    type State = FourState;

    fn name(&self) -> String {
        "four-clock n=4 f=1 (clock-sync layer A)".into()
    }

    fn initial_states(&self) -> Vec<FourState> {
        // Arbitrary (a1, a2) trits at beat boundaries, and arbitrary
        // (a1, a2, gate) mid-beat — a transient fault can hit between
        // the sub-beats and leave the gate inconsistent with a1.
        let mut out = Vec::new();
        for phase in 0..2u8 {
            let mut domain = Vec::new();
            for x in 0..3u8 {
                for y in 0..3u8 {
                    for g in 0..=phase {
                        domain.push((x, y, g));
                    }
                }
            }
            for a in 0..domain.len() {
                for b in a..domain.len() {
                    for c in b..domain.len() {
                        out.push((phase, vec![domain[a], domain[b], domain[c]]));
                    }
                }
            }
        }
        out
    }

    fn choices(&self, state: &FourState) -> Vec<Choice<FourState>> {
        let (phase, rows) = state;
        let mut out = Vec::new();
        for &l0 in &SUB_LETTERS {
            for &l1 in &SUB_LETTERS {
                for &l2 in &SUB_LETTERS {
                    let letters = [l0, l1, l2];
                    let label = format!(
                        "{} n0:{} n1:{} n2:{}",
                        if *phase == 0 { "A1" } else { "A2" },
                        sub_letter_label(letters[0]),
                        sub_letter_label(letters[1]),
                        sub_letter_label(letters[2]),
                    );
                    let common = vec![
                        self.step_joint(*phase, rows, &letters, &[false; CORRECT]),
                        self.step_joint(*phase, rows, &letters, &[true; CORRECT]),
                    ];
                    let mut adversarial = Vec::new();
                    for bits in 1..(1u32 << CORRECT) - 1 {
                        let bv = [bits & 1 != 0, bits & 2 != 0, bits & 4 != 0];
                        adversarial.push(self.step_joint(*phase, rows, &letters, &bv));
                    }
                    out.push(Choice {
                        label,
                        common,
                        adversarial,
                    });
                }
            }
        }
        out
    }

    fn is_synced(&self, state: &FourState) -> bool {
        // All pairs equal and definite; at phase 1 the gate must also be
        // consistent with a1 (a corruption-flipped gate skips one A2
        // sub-beat and is therefore still *converging*, not synced).
        let rows = &state.1;
        rows.iter().all(|r| *r == rows[0])
            && rows[0].0 != 2
            && rows[0].1 != 2
            && (state.0 == 0 || rows[0].2 == u8::from(rows[0].0 == 0))
    }

    fn bound_beats(&self) -> u32 {
        self.bound
    }

    fn rank_per_beat(&self) -> u32 {
        2 // two engine steps (A1 sub-beat, A2 sub-beat) per beat
    }

    fn describe(&self, state: &FourState) -> String {
        let rows: Vec<String> = state
            .1
            .iter()
            .map(|&(x, y, g)| {
                if state.0 == 1 {
                    format!("({},{},g{})", trit_name(x), trit_name(y), g)
                } else {
                    format!("({},{})", trit_name(x), trit_name(y))
                }
            })
            .collect();
        format!("phase{} [{}]", state.0, rows.join(" "))
    }

    fn synced_progress(&self, from: &FourState, to: &FourState) -> bool {
        // The synced 4-clock must cycle 0 → 1 → 2 → 3: the A1 sub-beat
        // flips a1 and leaves a2; the A2 sub-beat flips a2 iff the gate
        // was set (a1 had just become 0) and leaves a1.
        let (fx, fy, _) = from.1[0];
        to.1.iter().all(|&(tx, ty, _)| {
            if from.0 == 0 {
                ty == fy && tx == fx ^ 1
            } else {
                tx == fx && ty == if fx == 0 { fy ^ 1 } else { fy }
            }
        })
    }
}

// ---------------------------------------------------------------------
// Layer B: the k-clock blocks over a synced 4-clock
// ---------------------------------------------------------------------

/// Layer-B state: the shared 4-clock block value `b` plus one row per
/// correct node. A row is `(full_clock, e1, e2)` where `(e1, e2)` encode
/// the *live* image of the previous beat's receipts — exactly what the
/// next block reads, nothing more:
///
/// - entering `b = 0`: nothing is live — `(fc, 0, 0)`;
/// - entering `b = 1`: the propose image of the `Full` receipts —
///   `(fc, v, 0)` with `v ∈ 0..k` or `v = k` for `⊥`;
/// - entering `b = 2`: the `(save, bit)` image of the `Propose` receipts —
///   `(fc, save, bit)`;
/// - entering `b = 3`: the retained `save` and the bit-vote class —
///   `(fc, save, class)` with class 0 = no quorum, 1 = ones-quorum,
///   2 = zeros-quorum.
pub type TopState = (u8, Vec<(u8, u8, u8)>);

const CLASS_NEITHER: u8 = 0;
const CLASS_ONES: u8 = 1;
const CLASS_ZEROS: u8 = 2;

/// One Byzantine phase-2 letter of the top layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TopLetter {
    Silent,
    Full(u64),
    Propose(u64),
    Bit(bool),
}

impl TopLetter {
    fn label(&self) -> String {
        match self {
            TopLetter::Silent => "-".into(),
            TopLetter::Full(v) => format!("F{v}"),
            TopLetter::Propose(v) => format!("P{v}"),
            TopLetter::Bit(b) => format!("B{}", u8::from(*b)),
        }
    }
}

/// The covering per-recipient Byzantine alphabet for a beat with block
/// value `b`:
///
/// - `b = 0` (`Full` beat): silence or `Full(v)`, `v < k`. Out-of-range
///   values are equivalent to silence — with one Byzantine sender a
///   garbage value can never reach the `n − f` propose quorum.
/// - `b = 1` (`Propose` beat): silence (≡ `Propose(⊥)`, which block (c)
///   ignores), `Propose(v)` for `v < k`, and `Propose(k + r)` for
///   `r < k` — the representative out-of-range value: it loses every
///   count tie (block (c) breaks ties to the smaller value) and its
///   retained `save` is its residue `r`.
/// - `b = 2` (`BitVote` beat): silence or either bit.
/// - `b = 3`: silence only — messages received during a `b = 3` beat are
///   overwritten before any block reads them.
fn letters_for_block(b: u8) -> Vec<TopLetter> {
    match b {
        0 => {
            let mut l = vec![TopLetter::Silent];
            l.extend((0..K as u64).map(TopLetter::Full));
            l
        }
        1 => {
            let mut l = vec![TopLetter::Silent];
            l.extend((0..K as u64).map(TopLetter::Propose));
            l.extend((0..K as u64).map(|r| TopLetter::Propose(K as u64 + r)));
            l
        }
        2 => vec![
            TopLetter::Silent,
            TopLetter::Bit(false),
            TopLetter::Bit(true),
        ],
        _ => vec![TopLetter::Silent],
    }
}

/// Exhaustive model of the Fig. 4 top layer at `n = 4, f = 1, k = 4`,
/// over a synced cycling 4-clock.
#[derive(Debug, Clone)]
pub struct TopLayerModel {
    bound: u32,
}

impl TopLayerModel {
    /// Builds the model with the default claimed convergence bound.
    pub fn new() -> Self {
        TopLayerModel { bound: 8 }
    }

    /// Overrides the claimed convergence bound (beats).
    pub fn with_bound(mut self, bound: u32) -> Self {
        self.bound = bound;
        self
    }

    /// The pinned sub-clock pair for a beat whose block dispatch must
    /// read `clock(A) = b` (`b = 2·a2 + a1`).
    fn four_state(b: u8) -> (Trit, Trit) {
        (
            trit_unrank(b & 1),        // a1
            trit_unrank((b >> 1) & 1), // a2
        )
    }

    /// Builds node `i` and replays its send half of a `b`-beat: restore
    /// the canonical row, run all three send phases (capturing the block
    /// and incrementing `full_clock`), and return the node plus its
    /// phase-2 broadcast, if any.
    fn spin_up(
        &self,
        b: u8,
        row: (u8, u8, u8),
        i: usize,
        bit: bool,
    ) -> (ClockSync<FixedRand>, Option<ClockSyncMsg<()>>) {
        let me = NodeId::new(i as u16);
        let h = FixedRand::new();
        h.set(bit);
        let mut node = ClockSync::new(
            NodeCfg::new(me, N, F),
            K as u64,
            FixedRand::new(),
            FixedRand::new(),
            h.clone(),
        );
        let (fc, e1, e2) = row;
        let (a1, a2) = TopLayerModel::four_state(b);
        let (save, fulls, proposes, bits) = match b {
            0 => (0, Vec::new(), Vec::new(), Vec::new()),
            1 => {
                // e1 = propose image: v < k, or k for ⊥.
                let fulls: Vec<(NodeId, u64)> = if e1 < K {
                    (0..CORRECT)
                        .map(|j| (NodeId::new(j as u16), e1 as u64))
                        .collect()
                } else {
                    Vec::new()
                };
                (0, fulls, Vec::new(), Vec::new())
            }
            2 => {
                // (e1, e2) = (save, bit) image of the propose receipts: a
                // quorum of Some(save) if bit, else a single receipt.
                let count = if e2 != 0 { CORRECT } else { 1 };
                let proposes: Vec<(NodeId, Option<u64>)> = (0..count)
                    .map(|j| (NodeId::new(j as u16), Some(e1 as u64)))
                    .collect();
                (0, Vec::new(), proposes, Vec::new())
            }
            _ => {
                // e2 = bit-vote class.
                let bits: Vec<(NodeId, bool)> = match e2 {
                    CLASS_ONES => (0..CORRECT)
                        .map(|j| (NodeId::new(j as u16), true))
                        .collect(),
                    CLASS_ZEROS => (0..CORRECT)
                        .map(|j| (NodeId::new(j as u16), false))
                        .collect(),
                    _ => vec![(NodeId::new(0), true), (NodeId::new(1), false)],
                };
                (e1 as u64, Vec::new(), Vec::new(), bits)
            }
        };
        node.mc_restore_top(a1, a2, fc as u64, save, fulls, proposes, bits);
        let mut rng = SimRng::seed_from_u64(0);
        collect_sends(&mut node, 0, &mut rng); // captures block = clock(A)
        collect_sends(&mut node, 1, &mut rng);
        let phase2 = collect_sends(&mut node, 2, &mut rng);
        let broadcast = phase2.into_iter().find_map(|(t, m)| {
            debug_assert!(matches!(t, Target::All));
            match m {
                ClockSyncMsg::Coin(_) => None,
                other => Some(other),
            }
        });
        (node, broadcast)
    }

    /// One full beat of node `i`: send half, then the phase-2 delivery
    /// with the correct broadcasts plus one Byzantine letter. Returns the
    /// node's next canonical row.
    #[allow(clippy::too_many_arguments)]
    fn step_node(
        &self,
        b: u8,
        rows: &[(u8, u8, u8)],
        broadcasts: &[Option<ClockSyncMsg<()>>],
        i: usize,
        letter: TopLetter,
        bit: bool,
    ) -> (u8, u8, u8) {
        let me = NodeId::new(i as u16);
        let (mut node, _) = self.spin_up(b, rows[i], i, bit);
        let mut inbox: Vec<Envelope<ClockSyncMsg<()>>> = broadcasts
            .iter()
            .enumerate()
            .filter_map(|(j, m)| {
                m.clone()
                    .map(|msg| Envelope::new(NodeId::new(j as u16), me, msg))
            })
            .collect();
        let byz = NodeId::new(CORRECT as u16);
        match letter {
            TopLetter::Silent => {}
            TopLetter::Full(v) => inbox.push(Envelope::new(byz, me, ClockSyncMsg::Full(v))),
            TopLetter::Propose(v) => {
                inbox.push(Envelope::new(byz, me, ClockSyncMsg::Propose(Some(v))))
            }
            TopLetter::Bit(v) => inbox.push(Envelope::new(byz, me, ClockSyncMsg::BitVote(v))),
        }
        let mut rng = SimRng::seed_from_u64(0);
        node.deliver(2, &inbox, &mut rng);
        let fc = node.full_clock() as u8;
        match (b + 1) % K {
            0 => (fc, 0, 0),
            1 => {
                let img = node.mc_propose_image().map_or(K, |v| v as u8);
                (fc, img, 0)
            }
            2 => {
                let (s, bit) = node.mc_save_bit_image();
                (fc, (s.unwrap_or(0) % K as u64) as u8, u8::from(bit))
            }
            _ => {
                let quorum = N - F;
                let bits = node.mc_prev_bits();
                let ones = bits.iter().filter(|&&(_, v)| v).count();
                let zeros = bits.iter().filter(|&&(_, v)| !v).count();
                let class = if ones >= quorum {
                    CLASS_ONES
                } else if zeros >= quorum {
                    CLASS_ZEROS
                } else {
                    CLASS_NEITHER
                };
                (fc, node.mc_save() as u8, class)
            }
        }
    }

    fn step_joint(
        &self,
        b: u8,
        rows: &[(u8, u8, u8)],
        broadcasts: &[Option<ClockSyncMsg<()>>],
        letters: &[TopLetter; CORRECT],
        bits: &[bool; CORRECT],
    ) -> TopState {
        let mut next: Vec<(u8, u8, u8)> = (0..CORRECT)
            .map(|i| self.step_node(b, rows, broadcasts, i, letters[i], bits[i]))
            .collect();
        next.sort_unstable();
        ((b + 1) % K, next)
    }

    fn row_domain(b: u8) -> Vec<(u8, u8, u8)> {
        let mut out = Vec::new();
        for fc in 0..K {
            match b {
                0 => out.push((fc, 0, 0)),
                1 => out.extend((0..=K).map(|v| (fc, v, 0))),
                2 => {
                    for s in 0..K {
                        for bit in 0..2 {
                            out.push((fc, s, bit));
                        }
                    }
                }
                _ => {
                    for s in 0..K {
                        for class in [CLASS_NEITHER, CLASS_ONES, CLASS_ZEROS] {
                            out.push((fc, s, class));
                        }
                    }
                }
            }
        }
        out
    }
}

impl Default for TopLayerModel {
    fn default() -> Self {
        TopLayerModel::new()
    }
}

impl Model for TopLayerModel {
    type State = TopState;

    fn name(&self) -> String {
        "clock-sync n=4 f=1 k=4 (layer B over a synced 4-clock)".into()
    }

    fn initial_states(&self) -> Vec<TopState> {
        // Every canonical state is a legitimate wake-up state: a
        // transient fault leaves arbitrary raw prev_* vectors, the row
        // encoding is exactly their live image, and fc/save are mod-k
        // from the first beat on.
        let mut out = Vec::new();
        for b in 0..K {
            let domain = TopLayerModel::row_domain(b);
            for x in 0..domain.len() {
                for y in x..domain.len() {
                    for z in y..domain.len() {
                        out.push((b, vec![domain[x], domain[y], domain[z]]));
                    }
                }
            }
        }
        out
    }

    fn choices(&self, state: &TopState) -> Vec<Choice<TopState>> {
        let (b, rows) = state;
        // The phase-2 broadcasts do not depend on the Byzantine letters
        // or the coin — compute them once per state.
        let broadcasts: Vec<Option<ClockSyncMsg<()>>> = (0..CORRECT)
            .map(|i| self.spin_up(*b, rows[i], i, false).1)
            .collect();
        let letters = letters_for_block(*b);
        let mut out = Vec::new();
        for l0 in 0..letters.len() {
            for l1 in 0..letters.len() {
                for l2 in 0..letters.len() {
                    let ls = [letters[l0], letters[l1], letters[l2]];
                    let label = format!(
                        "b{} n0:{} n1:{} n2:{}",
                        b,
                        ls[0].label(),
                        ls[1].label(),
                        ls[2].label()
                    );
                    let (common, adversarial) = if *b == 3 {
                        // Block (d) reads the beat's coin.
                        let common = vec![
                            self.step_joint(*b, rows, &broadcasts, &ls, &[false; CORRECT]),
                            self.step_joint(*b, rows, &broadcasts, &ls, &[true; CORRECT]),
                        ];
                        let mut adversarial = Vec::new();
                        for bits in 1..(1u32 << CORRECT) - 1 {
                            let bv = [bits & 1 != 0, bits & 2 != 0, bits & 4 != 0];
                            adversarial.push(self.step_joint(*b, rows, &broadcasts, &ls, &bv));
                        }
                        (common, adversarial)
                    } else {
                        (
                            vec![self.step_joint(*b, rows, &broadcasts, &ls, &[false; CORRECT])],
                            Vec::new(),
                        )
                    };
                    out.push(Choice {
                        label,
                        common,
                        adversarial,
                    });
                }
            }
        }
        out
    }

    fn is_synced(&self, state: &TopState) -> bool {
        // Agreement alone is not enough: the receipt images must also be
        // *cycle-coherent* — the values the synchronized operating cycle
        // produces. An agreeing b = 3 state with `save ≠ fc − 2` is a
        // transient: block (d) jumps its clock (stabilization at work),
        // so it cannot be in the closed synced set.
        let rows = &state.1;
        if !rows.iter().all(|r| *r == rows[0]) {
            return false;
        }
        let (fc, e1, e2) = rows[0];
        match state.0 {
            0 => true,
            1 => e1 == fc,
            2 => e1 == (fc + 3) % K && e2 == 1,
            _ => e1 == (fc + 2) % K && e2 == CLASS_ONES,
        }
    }

    fn bound_beats(&self) -> u32 {
        self.bound
    }

    fn describe(&self, state: &TopState) -> String {
        let rows: Vec<String> = state
            .1
            .iter()
            .map(|&(fc, e1, e2)| match state.0 {
                0 => format!("fc{fc}"),
                1 => format!(
                    "fc{fc},p{}",
                    if e1 >= K {
                        "⊥".into()
                    } else {
                        e1.to_string()
                    }
                ),
                2 => format!("fc{fc},s{e1},b{e2}"),
                _ => format!("fc{fc},s{e1},{}", ["no-q", "ones", "zeros"][e2 as usize]),
            })
            .collect();
        format!("b{} [{}]", state.0, rows.join(" "))
    }

    fn synced_progress(&self, from: &TopState, to: &TopState) -> bool {
        // A synced k-clock ticks once per beat, through every block —
        // including block (d)'s overwrite, which must be the identity on
        // a synced cycle.
        let fc = from.1[0].0;
        to.1.iter().all(|&(tfc, _, _)| tfc == (fc + 1) % K)
    }
}
