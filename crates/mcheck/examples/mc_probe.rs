use byzclock_mcheck::clock_sync::{FourClockModel, TopLayerModel};
use byzclock_mcheck::engine::check;
use byzclock_mcheck::two_clock::TwoClockModel;

fn show(r: &byzclock_mcheck::CheckReport) {
    println!(
        "{}: complete={} states={} edges={} synced={} persistent={} transient={} max_rank={} beats={} bound={} violation={:?}",
        r.model, r.complete, r.states, r.edges, r.synced_states, r.persistent_states,
        r.transient_synced, r.max_rank, r.max_rank_beats, r.bound_beats,
        r.violation.as_ref().map(|v| (v.kind, v.detail.clone()))
    );
    if let Some(v) = &r.violation {
        println!("trace:\n{}", v.trace);
    }
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let cap: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1 << 22);
    if which == "two" || which == "all" {
        show(&check(&TwoClockModel::honest(4, 1), cap));
        show(&check(&TwoClockModel::broken(4, 1), cap));
    }
    if which == "four" || which == "all" {
        show(&check(&FourClockModel::new(), cap));
    }
    if which == "top" || which == "all" {
        show(&check(&TopLayerModel::new(), cap));
    }
    if which == "bd1" || which == "bd" || which == "all" {
        show(&check(&byzclock_mcheck::BdModel::new(1), cap));
    }
    if which == "bd2" || which == "bd" || which == "all" {
        show(&check(&byzclock_mcheck::BdModel::new(2), cap));
    }
}
