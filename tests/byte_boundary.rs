//! The byte boundary is behaviorally invisible: a run whose envelopes are
//! serialized at send and re-parsed at delivery (`wire=fixed-bytes` /
//! `wire=packed-bytes`) produces a report identical to its in-memory twin
//! — for **every** protocol family in the registry, under faults,
//! phantoms, adversaries, and bounded delay. And the packed format changes
//! *only* the byte accounting: convergence, clocks, and extras match the
//! fixed format line for line.

use byzclock::scenario::{default_registry, RunReport, ScenarioSpec, WireSpec};
use proptest::prelude::*;

/// One spec line per protocol family (and per coin substrate where a name
/// resolves differently by coin), budgets sized for test time. Kept in
/// sync with `default_registry().names()` by
/// `every_registered_family_is_covered` below.
const FAMILY_LINES: &[&str] = &[
    "two-clock n=7 f=2 coin=oracle adv=split-vote faults=corrupt-start seed=5 budget=300",
    "two-clock n=4 f=1 coin=local faults=corrupt-start seed=1 budget=400",
    "two-clock n=4 f=1 coin=ticket faults=corrupt-start seed=2 budget=150",
    "two-clock n=4 f=1 coin=xor faults=corrupt-start seed=2 budget=150",
    "broken-two-clock n=7 f=2 coin=oracle adv=rand-aware-splitter faults=corrupt-start seed=3 \
     budget=300",
    "four-clock n=7 f=2 coin=oracle faults=corrupt-start seed=4 budget=300",
    "four-clock n=4 f=1 coin=ticket faults=corrupt-start seed=4 budget=150",
    "shared-four-clock n=4 f=1 coin=ticket faults=corrupt-start seed=6 budget=150",
    "clock-sync n=7 f=2 k=8 coin=oracle faults=corrupt-start seed=7 budget=300",
    "clock-sync n=4 f=1 k=16 coin=ticket faults=corrupt-start seed=8 budget=200",
    // A fault storm with phantom replays: stale envelopes also cross the
    // byte boundary when they resurface.
    "clock-sync n=4 f=1 k=16 coin=ticket faults=scramble@20+phantoms@20:50 seed=8 budget=200",
    "recursive n=7 f=2 k=8 coin=oracle faults=corrupt-start seed=9 budget=400",
    "bd-clock n=7 f=2 k=8 coin=oracle faults=corrupt-start delay=2 seed=10 budget=600",
    "dw-clock n=4 f=1 k=2 coin=local faults=corrupt-start seed=11 budget=3000",
    "queen-clock n=5 f=1 k=8 coin=none adv=ba-equivocator byz=0 faults=corrupt-start seed=12 \
     budget=300",
    "pk-clock n=4 f=1 k=8 coin=none faults=corrupt-start seed=13 budget=300",
    "coin-stream n=4 f=1 coin=ticket adv=coin-noise:4 faults=none seed=14 budget=30",
    "coin-stream n=4 f=1 coin=xor adv=recover-equivocator:3 faults=none seed=15 budget=30",
];

/// Reports are compared with the spec line (which names the wire knob and
/// therefore legitimately differs) normalized away.
fn normalized(mut report: RunReport, spec_line: &str) -> RunReport {
    report.spec = spec_line.to_string();
    report
}

fn run_with_wire(line: &str, wire: WireSpec) -> RunReport {
    let spec = ScenarioSpec::parse(line)
        .unwrap_or_else(|e| panic!("`{line}`: {e}"))
        .with_wire(wire);
    default_registry()
        .run(&spec)
        .unwrap_or_else(|e| panic!("`{line}` ({wire:?}): {e}"))
}

#[test]
fn every_registered_family_is_covered() {
    let mut covered: Vec<&str> = FAMILY_LINES
        .iter()
        .map(|l| l.split_whitespace().next().unwrap())
        .collect();
    covered.sort_unstable();
    covered.dedup();
    let mut names = default_registry().names();
    names.sort_unstable();
    assert_eq!(
        covered,
        names.iter().map(String::as_str).collect::<Vec<_>>(),
        "FAMILY_LINES drifted from the registered protocol families"
    );
}

#[test]
fn byte_boundary_reports_are_identical_to_in_memory_reports() {
    for line in FAMILY_LINES {
        let fixed = run_with_wire(line, WireSpec::Fixed);
        let fixed_bytes = run_with_wire(line, WireSpec::FixedBytes);
        assert_eq!(
            normalized(fixed_bytes, line),
            normalized(fixed.clone(), line),
            "`{line}`: fixed-bytes drifted from in-memory fixed"
        );
        let packed = run_with_wire(line, WireSpec::Packed);
        let packed_bytes = run_with_wire(line, WireSpec::PackedBytes);
        assert_eq!(
            normalized(packed_bytes, line),
            normalized(packed.clone(), line),
            "`{line}`: packed-bytes drifted from in-memory packed"
        );

        // The packed format re-prices bytes but must not touch behavior:
        // everything except the byte counters matches the fixed run.
        let mut packed_neutral = normalized(packed, line);
        let fixed_neutral = normalized(fixed, line);
        packed_neutral.traffic.correct_bytes = fixed_neutral.traffic.correct_bytes;
        packed_neutral.traffic.byz_bytes = fixed_neutral.traffic.byz_bytes;
        packed_neutral.traffic.mean_correct_bytes_per_beat =
            fixed_neutral.traffic.mean_correct_bytes_per_beat;
        assert_eq!(
            packed_neutral, fixed_neutral,
            "`{line}`: the packed format changed more than byte accounting"
        );
    }
}

#[test]
fn packed_format_shrinks_the_gvss_heavy_families() {
    // The headline M1 lever: the ticket stack's Row/Echo/Recover matrices.
    for line in [
        "clock-sync n=7 f=2 k=64 coin=ticket faults=none seed=1 budget=30",
        "coin-stream n=7 f=2 coin=ticket faults=none seed=1 budget=30",
    ] {
        let fixed = run_with_wire(line, WireSpec::Fixed);
        let packed = run_with_wire(line, WireSpec::Packed);
        let ratio =
            fixed.traffic.mean_correct_bytes_per_beat / packed.traffic.mean_correct_bytes_per_beat;
        assert!(
            ratio >= 3.0,
            "`{line}`: packed must cut bytes/beat at least 3x, got {ratio:.2} \
             ({:.0} -> {:.0})",
            fixed.traffic.mean_correct_bytes_per_beat,
            packed.traffic.mean_correct_bytes_per_beat
        );
        assert_eq!(
            fixed.traffic.correct_msgs, packed.traffic.correct_msgs,
            "message counts must not change"
        );
    }
}

/// The ticket stack under a storm with phantom replays — the heaviest
/// traffic shape (stale GVSS matrices resurfacing with arbitrary tags) —
/// stays identical across the boundary for a spread of seeds.
#[test]
fn byte_boundary_identity_survives_storms_and_phantoms() {
    for seed in 0..3u64 {
        let line = format!(
            "clock-sync n=4 f=1 k=16 coin=ticket faults=scramble@15+phantoms@15:40 \
             seed={seed} budget=150"
        );
        for (mem, bytes) in [
            (WireSpec::Fixed, WireSpec::FixedBytes),
            (WireSpec::Packed, WireSpec::PackedBytes),
        ] {
            let in_memory = run_with_wire(&line, mem);
            let across_bytes = run_with_wire(&line, bytes);
            assert_eq!(
                normalized(across_bytes, &line),
                normalized(in_memory, &line),
                "`{line}` drifted across the byte boundary"
            );
        }
    }
}

proptest! {
    /// Seed-randomized restatement of the identity on the (cheap) oracle
    /// 2-clock under an active adversary: whatever the seed scrambles,
    /// serializing and re-parsing every envelope changes nothing.
    #[test]
    fn byte_boundary_identity_holds_for_arbitrary_seeds(seed in 0u64..1000) {
        let line = format!(
            "two-clock n=7 f=2 coin=oracle adv=split-vote faults=corrupt-start \
             seed={seed} budget=200"
        );
        for (mem, bytes) in [
            (WireSpec::Fixed, WireSpec::FixedBytes),
            (WireSpec::Packed, WireSpec::PackedBytes),
        ] {
            let in_memory = run_with_wire(&line, mem);
            let across_bytes = run_with_wire(&line, bytes);
            prop_assert_eq!(
                normalized(across_bytes, &line),
                normalized(in_memory, &line),
                "`{}` drifted across the byte boundary",
                line
            );
        }
    }
}
