//! The scenario layer's cross-crate contract: every registered protocol is
//! reachable from a spec line, errors are precise, and reports are
//! deterministic functions of the spec.

use byzclock::scenario::{
    default_registry, AdversarySpec, CoinSpec, FaultPlanSpec, RunReport, Scenario, ScenarioError,
    ScenarioSpec,
};

/// One known-good spec line per registered protocol name.
fn representative_specs() -> Vec<(&'static str, ScenarioSpec)> {
    vec![
        (
            "two-clock",
            ScenarioSpec::new("two-clock", 4, 1)
                .with_coin(CoinSpec::perfect_oracle())
                .with_budget(500),
        ),
        (
            "broken-two-clock",
            ScenarioSpec::new("broken-two-clock", 4, 1)
                .with_coin(CoinSpec::perfect_oracle())
                .with_budget(500),
        ),
        (
            "four-clock",
            ScenarioSpec::new("four-clock", 4, 1)
                .with_coin(CoinSpec::perfect_oracle())
                .with_budget(800),
        ),
        (
            "clock-sync",
            ScenarioSpec::new("clock-sync", 4, 1)
                .with_modulus(16)
                .with_budget(1_500),
        ),
        (
            "recursive",
            ScenarioSpec::new("recursive", 4, 1)
                .with_modulus(8)
                .with_coin(CoinSpec::perfect_oracle())
                .with_budget(2_000),
        ),
        (
            "shared-four-clock",
            ScenarioSpec::new("shared-four-clock", 4, 1).with_budget(1_500),
        ),
        (
            "coin-stream",
            ScenarioSpec::new("coin-stream", 4, 1)
                .with_faults(FaultPlanSpec::none())
                .with_budget(24),
        ),
        (
            "dw-clock",
            ScenarioSpec::new("dw-clock", 4, 1)
                .with_modulus(2)
                .with_coin(CoinSpec::Local)
                .with_budget(50_000),
        ),
        (
            "queen-clock",
            ScenarioSpec::new("queen-clock", 5, 1)
                .with_coin(CoinSpec::None)
                .with_budget(500),
        ),
        (
            "pk-clock",
            ScenarioSpec::new("pk-clock", 4, 1)
                .with_coin(CoinSpec::None)
                .with_budget(500),
        ),
    ]
}

/// Every name in the default registry has a representative spec here, and
/// every representative spec round-trips: spec → line → spec → run →
/// report echoing the exact spec line.
#[test]
fn every_registered_protocol_round_trips() {
    let registry = default_registry();
    let specs = representative_specs();
    let mut names = registry.names();
    names.sort();
    let mut covered: Vec<String> = specs.iter().map(|(n, _)| n.to_string()).collect();
    covered.sort();
    assert_eq!(
        names, covered,
        "registry names and representative specs diverged"
    );

    for (name, spec) in specs {
        assert_eq!(spec.protocol, name);
        let line = spec.to_string();
        let reparsed = ScenarioSpec::parse(&line)
            .unwrap_or_else(|e| panic!("{name}: line `{line}` failed to parse: {e}"));
        assert_eq!(reparsed, spec, "{name}: spec line round trip");
        let report = registry
            .run(&spec)
            .unwrap_or_else(|e| panic!("{name}: spec `{line}` failed to run: {e}"));
        assert_eq!(report.spec, line, "{name}: report echoes the spec line");
        assert!(report.beats > 0, "{name}: ran no beats");
        if name == "coin-stream" {
            assert!(
                report.converged_at.is_none(),
                "{name}: coin stream has no clock"
            );
            assert!(report.extra("agreement_rate").is_some());
        } else {
            assert!(
                report.converged_at.is_some(),
                "{name}: expected convergence within budget; report {report:?}"
            );
        }
    }
}

/// Unknown names fail with the catalog; wrong coins and wrong adversaries
/// fail with the precise category.
#[test]
fn error_paths_are_precise() {
    let registry = default_registry();

    match registry.run(&ScenarioSpec::new("nonexistent-clock", 4, 1)) {
        Err(ScenarioError::UnknownProtocol { name, known }) => {
            assert_eq!(name, "nonexistent-clock");
            for expected in ["two-clock", "clock-sync", "coin-stream", "dw-clock"] {
                assert!(
                    known.iter().any(|k| k == expected),
                    "missing {expected} in {known:?}"
                );
            }
        }
        other => panic!("expected UnknownProtocol, got {other:?}"),
    }

    // queen-clock is deterministic: a ticket coin is a category error.
    match registry.run(&ScenarioSpec::new("queen-clock", 5, 1).with_coin(CoinSpec::Ticket)) {
        Err(ScenarioError::UnsupportedCoin { protocol, .. }) => {
            assert_eq!(protocol, "queen-clock")
        }
        other => panic!("expected UnsupportedCoin, got {other:?}"),
    }

    // Coin-round attacks do not apply to clock protocols.
    match registry.run(
        &ScenarioSpec::new("clock-sync", 4, 1).with_adversary(AdversarySpec::InconsistentDealer),
    ) {
        Err(ScenarioError::UnsupportedAdversary { protocol, .. }) => {
            assert_eq!(protocol, "clock-sync")
        }
        other => panic!("expected UnsupportedAdversary, got {other:?}"),
    }

    // The coin-aware splitter needs an oracle coin to peek at.
    match registry.run(
        &ScenarioSpec::new("two-clock", 7, 2)
            .with_coin(CoinSpec::Ticket)
            .with_adversary(AdversarySpec::RandAwareSplitter),
    ) {
        Err(ScenarioError::UnsupportedAdversary { .. }) => {}
        other => panic!("expected UnsupportedAdversary, got {other:?}"),
    }

    // Structural validation fires before family resolution.
    match registry.run(&ScenarioSpec::new("clock-sync", 4, 4)) {
        Err(ScenarioError::InvalidSpec(msg)) => assert!(msg.contains("fault budget")),
        other => panic!("expected InvalidSpec, got {other:?}"),
    }
    match registry.run(&ScenarioSpec::new("clock-sync", 4, 1).with_byzantine([0, 0])) {
        Err(ScenarioError::InvalidSpec(msg)) => assert!(msg.contains("duplicate")),
        other => panic!("expected InvalidSpec, got {other:?}"),
    }

    // Parse errors name the offending fragment.
    match ScenarioSpec::parse("two-clock n=4 adv=meteor-strike") {
        Err(ScenarioError::Parse(msg)) => assert!(msg.contains("meteor-strike")),
        other => panic!("expected Parse error, got {other:?}"),
    }
}

/// The determinism pin the acceptance criteria name: a fixed spec + seed
/// produces an identical `RunReport`, and the report survives a JSON dump.
#[test]
fn fixed_spec_and_seed_pin_the_report() {
    let spec = ScenarioSpec::parse(
        "clock-sync n=4 f=1 k=16 coin=ticket adv=silent faults=corrupt-start seed=42 budget=2000",
    )
    .unwrap();
    let a = Scenario::run(&spec).unwrap();
    let b = Scenario::run(&spec).unwrap();
    assert_eq!(a, b, "same spec+seed must replay bit-identically");
    assert!(a.converged_at.is_some());

    // Seeds matter: a different seed gives a different trajectory (clock
    // readings and convergence beat may coincide, but the full report —
    // traffic included — must not).
    let c = Scenario::run(&spec.clone().with_seed(43)).unwrap();
    assert_ne!(a, c, "different seeds must not replay the same run");

    // JSON dump carries the headline numbers.
    let json = a.to_json();
    assert!(json.contains("\"spec\""));
    assert!(json.contains("\"converged_at\""));
    assert!(json.contains("\"mean_correct_msgs_per_beat\""));
}

/// Adversary sweeps through the registry preserve the paper's headline:
/// the full stack converges under every clock-layer adversary.
#[test]
fn full_stack_converges_under_every_clock_adversary() {
    let registry = default_registry();
    for adversary in [
        AdversarySpec::Silent,
        AdversarySpec::RandomVote,
        AdversarySpec::Equivocate,
        AdversarySpec::SplitVote,
    ] {
        let spec = ScenarioSpec::new("clock-sync", 4, 1)
            .with_modulus(8)
            .with_adversary(adversary)
            .with_seed(1)
            .with_budget(3_000);
        let report = registry.run(&spec).unwrap();
        assert!(
            report.converged_at.is_some(),
            "stalled under {adversary}: {report:?}"
        );
    }
}

/// `beats_to_sync` measures from the end of the last scheduled fault, so
/// recovery scenarios report recovery time, not absolute beats.
#[test]
fn recovery_reports_measure_from_the_fault() {
    let spec = ScenarioSpec::new("clock-sync", 4, 1)
        .with_modulus(16)
        .with_faults(FaultPlanSpec::storm(40, 60))
        .with_seed(5)
        .with_budget(3_000);
    let report: RunReport = Scenario::run(&spec).unwrap();
    let converged = report.converged_at.expect("recovers");
    assert!(
        converged >= 41,
        "tracking must not start before the fault clears"
    );
    assert_eq!(report.beats_to_sync(), Some(converged - 41));
}
