//! The scenario layer's cross-crate contract: every registered protocol is
//! reachable from a spec line, errors are precise, and reports are
//! deterministic functions of the spec.

use byzclock::scenario::{
    default_registry, AdversarySpec, CoinSpec, FaultPlanSpec, RunReport, Scenario, ScenarioError,
    ScenarioSpec,
};

/// One known-good spec line per registered protocol name.
fn representative_specs() -> Vec<(&'static str, ScenarioSpec)> {
    vec![
        (
            "two-clock",
            ScenarioSpec::new("two-clock", 4, 1)
                .with_coin(CoinSpec::perfect_oracle())
                .with_budget(500),
        ),
        (
            "broken-two-clock",
            ScenarioSpec::new("broken-two-clock", 4, 1)
                .with_coin(CoinSpec::perfect_oracle())
                .with_budget(500),
        ),
        (
            "four-clock",
            ScenarioSpec::new("four-clock", 4, 1)
                .with_coin(CoinSpec::perfect_oracle())
                .with_budget(800),
        ),
        (
            "clock-sync",
            ScenarioSpec::new("clock-sync", 4, 1)
                .with_modulus(16)
                .with_budget(1_500),
        ),
        (
            "recursive",
            ScenarioSpec::new("recursive", 4, 1)
                .with_modulus(8)
                .with_coin(CoinSpec::perfect_oracle())
                .with_budget(2_000),
        ),
        (
            "shared-four-clock",
            ScenarioSpec::new("shared-four-clock", 4, 1).with_budget(1_500),
        ),
        (
            "bd-clock",
            ScenarioSpec::new("bd-clock", 7, 2)
                .with_coin(CoinSpec::perfect_oracle())
                .with_budget(1_000),
        ),
        (
            "coin-stream",
            ScenarioSpec::new("coin-stream", 4, 1)
                .with_faults(FaultPlanSpec::none())
                .with_budget(24),
        ),
        (
            "dw-clock",
            ScenarioSpec::new("dw-clock", 4, 1)
                .with_modulus(2)
                .with_coin(CoinSpec::Local)
                .with_budget(50_000),
        ),
        (
            "queen-clock",
            ScenarioSpec::new("queen-clock", 5, 1)
                .with_coin(CoinSpec::None)
                .with_budget(500),
        ),
        (
            "pk-clock",
            ScenarioSpec::new("pk-clock", 4, 1)
                .with_coin(CoinSpec::None)
                .with_budget(500),
        ),
    ]
}

/// Every name in the default registry has a representative spec here, and
/// every representative spec round-trips: spec → line → spec → run →
/// report echoing the exact spec line.
#[test]
fn every_registered_protocol_round_trips() {
    let registry = default_registry();
    let specs = representative_specs();
    let mut names = registry.names();
    names.sort();
    let mut covered: Vec<String> = specs.iter().map(|(n, _)| n.to_string()).collect();
    covered.sort();
    assert_eq!(
        names, covered,
        "registry names and representative specs diverged"
    );

    for (name, spec) in specs {
        assert_eq!(spec.protocol, name);
        let line = spec.to_string();
        let reparsed = ScenarioSpec::parse(&line)
            .unwrap_or_else(|e| panic!("{name}: line `{line}` failed to parse: {e}"));
        assert_eq!(reparsed, spec, "{name}: spec line round trip");
        let report = registry
            .run(&spec)
            .unwrap_or_else(|e| panic!("{name}: spec `{line}` failed to run: {e}"));
        assert_eq!(report.spec, line, "{name}: report echoes the spec line");
        assert!(report.beats > 0, "{name}: ran no beats");
        if name == "coin-stream" {
            assert!(
                report.converged_at.is_none(),
                "{name}: coin stream has no clock"
            );
            assert!(report.extra("agreement_rate").is_some());
        } else {
            assert!(
                report.converged_at.is_some(),
                "{name}: expected convergence within budget; report {report:?}"
            );
        }
    }
}

/// Unknown names fail with the catalog; wrong coins and wrong adversaries
/// fail with the precise category.
#[test]
fn error_paths_are_precise() {
    let registry = default_registry();

    match registry.run(&ScenarioSpec::new("nonexistent-clock", 4, 1)) {
        Err(ScenarioError::UnknownProtocol { name, known }) => {
            assert_eq!(name, "nonexistent-clock");
            for expected in ["two-clock", "clock-sync", "coin-stream", "dw-clock"] {
                assert!(
                    known.iter().any(|k| k == expected),
                    "missing {expected} in {known:?}"
                );
            }
        }
        other => panic!("expected UnknownProtocol, got {other:?}"),
    }

    // queen-clock is deterministic: a ticket coin is a category error.
    match registry.run(&ScenarioSpec::new("queen-clock", 5, 1).with_coin(CoinSpec::Ticket)) {
        Err(ScenarioError::UnsupportedCoin { protocol, .. }) => {
            assert_eq!(protocol, "queen-clock")
        }
        other => panic!("expected UnsupportedCoin, got {other:?}"),
    }

    // Coin-round attacks do not apply to clock protocols.
    match registry.run(
        &ScenarioSpec::new("clock-sync", 4, 1).with_adversary(AdversarySpec::InconsistentDealer),
    ) {
        Err(ScenarioError::UnsupportedAdversary { protocol, .. }) => {
            assert_eq!(protocol, "clock-sync")
        }
        other => panic!("expected UnsupportedAdversary, got {other:?}"),
    }

    // The coin-aware splitter needs an oracle coin to peek at.
    match registry.run(
        &ScenarioSpec::new("two-clock", 7, 2)
            .with_coin(CoinSpec::Ticket)
            .with_adversary(AdversarySpec::RandAwareSplitter),
    ) {
        Err(ScenarioError::UnsupportedAdversary { .. }) => {}
        other => panic!("expected UnsupportedAdversary, got {other:?}"),
    }

    // Structural validation fires before family resolution.
    match registry.run(&ScenarioSpec::new("clock-sync", 4, 4)) {
        Err(ScenarioError::InvalidSpec(msg)) => assert!(msg.contains("fault budget")),
        other => panic!("expected InvalidSpec, got {other:?}"),
    }
    match registry.run(&ScenarioSpec::new("clock-sync", 4, 1).with_byzantine([0, 0])) {
        Err(ScenarioError::InvalidSpec(msg)) => assert!(msg.contains("duplicate")),
        other => panic!("expected InvalidSpec, got {other:?}"),
    }

    // Parse errors name the offending fragment.
    match ScenarioSpec::parse("two-clock n=4 adv=meteor-strike") {
        Err(ScenarioError::Parse(msg)) => assert!(msg.contains("meteor-strike")),
        other => panic!("expected Parse error, got {other:?}"),
    }
}

/// The determinism pin the acceptance criteria name: a fixed spec + seed
/// produces an identical `RunReport`, and the report survives a JSON dump.
#[test]
fn fixed_spec_and_seed_pin_the_report() {
    let spec = ScenarioSpec::parse(
        "clock-sync n=4 f=1 k=16 coin=ticket adv=silent faults=corrupt-start seed=42 budget=2000",
    )
    .unwrap();
    let a = Scenario::run(&spec).unwrap();
    let b = Scenario::run(&spec).unwrap();
    assert_eq!(a, b, "same spec+seed must replay bit-identically");
    assert!(a.converged_at.is_some());

    // Seeds matter: a different seed gives a different trajectory (clock
    // readings and convergence beat may coincide, but the full report —
    // traffic included — must not).
    let c = Scenario::run(&spec.clone().with_seed(43)).unwrap();
    assert_ne!(a, c, "different seeds must not replay the same run");

    // JSON dump carries the headline numbers.
    let json = a.to_json();
    assert!(json.contains("\"spec\""));
    assert!(json.contains("\"converged_at\""));
    assert!(json.contains("\"mean_correct_msgs_per_beat\""));
}

/// Adversary sweeps through the registry preserve the paper's headline:
/// the full stack converges under every clock-layer adversary.
#[test]
fn full_stack_converges_under_every_clock_adversary() {
    let registry = default_registry();
    for adversary in [
        AdversarySpec::Silent,
        AdversarySpec::RandomVote,
        AdversarySpec::Equivocate,
        AdversarySpec::SplitVote,
    ] {
        let spec = ScenarioSpec::new("clock-sync", 4, 1)
            .with_modulus(8)
            .with_adversary(adversary)
            .with_seed(1)
            .with_budget(3_000);
        let report = registry.run(&spec).unwrap();
        assert!(
            report.converged_at.is_some(),
            "stalled under {adversary}: {report:?}"
        );
    }
}

/// The `delay=` timing knob round-trips through the one-line form on
/// every registered protocol family, and lockstep lines never carry it.
#[test]
fn delay_field_round_trips_on_every_family() {
    for (name, spec) in representative_specs() {
        let lockstep_line = spec.to_string();
        assert!(
            !lockstep_line.contains("delay="),
            "{name}: lockstep line must stay delay-free: {lockstep_line}"
        );
        let delayed = spec.with_delay(2);
        let line = delayed.to_string();
        assert!(line.contains(" delay=2 "), "{name}: {line}");
        let reparsed = ScenarioSpec::parse(&line)
            .unwrap_or_else(|e| panic!("{name}: `{line}` failed to parse: {e}"));
        assert_eq!(reparsed, delayed, "{name}: delay round trip");
        assert_eq!(
            reparsed.timing(),
            byzclock::scenario::TimingModel::BoundedDelay { window: 2 }
        );
    }
}

/// Lockstep reproduces the seed-era reports byte-for-byte: these JSON
/// lines were captured from the pre-timing-model simulator (the same-beat
/// delivery loop before the scheduler refactor). Any drift here means the
/// `TimingModel::Lockstep` path is no longer the paper's global beat.
#[test]
fn lockstep_pins_the_pre_refactor_seed_reports() {
    let goldens = [
        (
            "clock-sync n=7 f=2 k=64 coin=ticket adv=silent faults=corrupt-start seed=3 budget=3000",
            r#"{"spec":"clock-sync n=7 f=2 k=64 coin=ticket adv=silent faults=corrupt-start seed=3 budget=3000","beats":14,"converged_at":6,"measured_from":0,"final_streak":8,"final_clocks":[7,7,7,7,7],"traffic":{"correct_msgs":5719,"correct_bytes":978222,"byz_msgs":0,"byz_bytes":0,"forged_dropped":0,"phantom_msgs":0,"mean_correct_msgs_per_beat":408.500,"mean_correct_bytes_per_beat":69873.000},"extras":{}}"#,
        ),
        (
            "two-clock n=7 f=2 coin=oracle adv=split-vote faults=corrupt-start seed=5 budget=2000",
            r#"{"spec":"two-clock n=7 f=2 k=8 coin=oracle:500,500 adv=split-vote faults=corrupt-start seed=5 budget=2000","beats":10,"converged_at":2,"measured_from":0,"final_streak":8,"final_clocks":[0,0,0,0,0],"traffic":{"correct_msgs":350,"correct_bytes":700,"byz_msgs":140,"byz_bytes":280,"forged_dropped":0,"phantom_msgs":0,"mean_correct_msgs_per_beat":35.000,"mean_correct_bytes_per_beat":70.000},"extras":{}}"#,
        ),
        (
            "pk-clock n=4 f=1 k=32 coin=none adv=silent faults=corrupt-start seed=1 budget=500",
            r#"{"spec":"pk-clock n=4 f=1 k=32 coin=none adv=silent faults=corrupt-start seed=1 budget=500","beats":33,"converged_at":25,"measured_from":0,"final_streak":8,"final_clocks":[15,15,15],"traffic":{"correct_msgs":2640,"correct_bytes":13524,"byz_msgs":0,"byz_bytes":0,"forged_dropped":0,"phantom_msgs":0,"mean_correct_msgs_per_beat":80.000,"mean_correct_bytes_per_beat":409.818},"extras":{}}"#,
        ),
        (
            "coin-stream n=4 f=1 coin=ticket adv=coin-noise:4 faults=none seed=11 budget=40",
            r#"{"spec":"coin-stream n=4 f=1 k=8 coin=ticket adv=coin-noise:4 faults=none seed=11 budget=40","beats":40,"converged_at":null,"measured_from":0,"final_streak":0,"final_clocks":[],"traffic":{"correct_msgs":1920,"correct_bytes":158976,"byz_msgs":640,"byz_bytes":41120,"forged_dropped":0,"phantom_msgs":0,"mean_correct_msgs_per_beat":48.000,"mean_correct_bytes_per_beat":3974.400},"extras":{"p0":0.694444,"p1":0.305556,"agreement_rate":1.000000,"measured_beats":36.000000}}"#,
        ),
    ];
    for (line, golden) in goldens {
        let spec = ScenarioSpec::parse(line).unwrap();
        let report = Scenario::run(&spec).unwrap();
        assert_eq!(
            report.to_json(),
            golden,
            "lockstep drifted from the seed report for `{line}`"
        );
    }
}

/// Bounded-delay scenarios run end-to-end: `delay=2` parses, resolves,
/// replays deterministically, and reports the delay extras the grid
/// aggregates.
#[test]
fn bounded_delay_scenarios_report_delay_extras() {
    let spec = ScenarioSpec::parse(
        "clock-sync n=7 f=2 k=8 coin=oracle adv=silent faults=corrupt-start delay=2 \
         seed=2 budget=300",
    )
    .unwrap();
    let registry = default_registry();
    let a = registry.run_exact(&spec).unwrap();
    let b = registry.run_exact(&spec).unwrap();
    assert_eq!(a, b, "bounded delay must replay bit-identically");
    assert_eq!(a.extra("delay_window"), Some(2.0));
    let h0 = a.extra("delay_hist_0").unwrap();
    let h1 = a.extra("delay_hist_1").unwrap();
    assert!(h0 > 0.0 && h1 > 0.0);
    let mean = a.extra("mean_delay").unwrap();
    assert!(mean > 0.0 && mean < 1.0, "mean delay {mean}");
    // The window seed is part of the master seed: a different seed draws
    // different delays.
    let c = registry.run_exact(&spec.clone().with_seed(3)).unwrap();
    assert_ne!(a, c);
}

/// `beats_to_sync` measures from the end of the last scheduled fault, so
/// recovery scenarios report recovery time, not absolute beats.
#[test]
fn recovery_reports_measure_from_the_fault() {
    let spec = ScenarioSpec::new("clock-sync", 4, 1)
        .with_modulus(16)
        .with_faults(FaultPlanSpec::storm(40, 60))
        .with_seed(5)
        .with_budget(3_000);
    let report: RunReport = Scenario::run(&spec).unwrap();
    let converged = report.converged_at.expect("recovers");
    assert!(
        converged >= 41,
        "tracking must not start before the fault clears"
    );
    assert_eq!(report.beats_to_sync(), Some(converged - 41));
}
