//! End-to-end properties of the committee-subsampled coin family.
//!
//! The load-bearing one is degeneracy: `committee=n` IS the full ticket
//! coin — the registry delegates to the plain stack, so a spec's report
//! is identical field for field (modulo the spec echo itself) whether or
//! not the redundant key is present. That pins the committee seam as a
//! pure generalization: historical full-coin results are a special case,
//! not a separate code path that could drift.

use byzclock::scenario::{default_registry, ScenarioSpec};
use proptest::prelude::*;

proptest! {
    // Each case runs two full scenario simulations (the vendored proptest
    // shim runs `PROPTEST_CASES` cases, default 64 — clock runs stop at
    // convergence, so this stays fast).
    #[test]
    fn full_size_committee_reports_identically(
        n in 4usize..10,
        seed in 0u64..1_000,
        clock in any::<bool>(),
    ) {
        let f = (n - 1) / 3;
        let full = if clock {
            ScenarioSpec::new("clock-sync", n, f)
                .with_modulus(8)
                .with_budget(600)
        } else {
            ScenarioSpec::new("coin-stream", n, f).with_budget(40)
        }
        .with_seed(seed);
        let degenerate = full.clone().with_committee(n);
        let registry = default_registry();
        let a = registry.run(&full).unwrap();
        let mut b = registry.run(&degenerate).unwrap();
        // Only the echoed spec line may differ — by exactly the
        // `committee=` key.
        prop_assert_ne!(&a.spec, &b.spec);
        prop_assert!(b.spec.contains(&format!(" committee={n} ")), "{}", b.spec);
        b.spec = a.spec.clone();
        prop_assert_eq!(a, b);
    }
}

/// A strict committee (c < n) actually changes the traffic shape: the
/// committee stack moves fewer bytes per beat than the full stack at the
/// same cluster size — the point of the family.
#[test]
fn committee_traffic_is_cheaper_than_the_full_coin() {
    let full = ScenarioSpec::parse(
        "coin-stream n=32 f=1 coin=ticket adv=silent faults=none seed=5 budget=30",
    )
    .unwrap();
    let committee = full.clone().with_committee(10);
    let registry = default_registry();
    let a = registry.run(&full).unwrap();
    let b = registry.run(&committee).unwrap();
    assert!(
        b.traffic.mean_correct_bytes_per_beat < a.traffic.mean_correct_bytes_per_beat / 2.0,
        "committee bytes/beat {} vs full {}",
        b.traffic.mean_correct_bytes_per_beat,
        a.traffic.mean_correct_bytes_per_beat,
    );
    assert!(b.extra("agreement_rate").unwrap() > 0.9, "{b:?}");
}

/// The committee stack converges through the packed wire codec and across
/// a real byte boundary — the relay message is a first-class wire citizen.
#[test]
fn committee_clock_sync_converges_over_packed_bytes() {
    let spec = ScenarioSpec::parse(
        "clock-sync n=16 f=1 k=8 coin=ticket committee=7 adv=silent faults=corrupt-start \
         wire=packed-bytes seed=2 budget=400",
    )
    .unwrap();
    let report = default_registry().run(&spec).unwrap();
    assert!(report.converged_at.is_some(), "{report:?}");
    // Byte-boundary runs report identically to their in-memory twins.
    let in_memory = ScenarioSpec::parse(
        "clock-sync n=16 f=1 k=8 coin=ticket committee=7 adv=silent faults=corrupt-start \
         wire=packed seed=2 budget=400",
    )
    .unwrap();
    let twin = default_registry().run(&in_memory).unwrap();
    assert_eq!(report.converged_at, twin.converged_at);
    assert_eq!(report.final_clocks, twin.final_clocks);
}
