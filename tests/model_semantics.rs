//! The model of Section 2, asserted end-to-end: private channels, rushing,
//! sender authentication, and the beat-delivery guarantee.

use byzclock::alg::{OracleBeacon, Trit, TwoClock, TwoClockMsg};
use byzclock::coin::{ticket_two_clock, TicketTwoClock};
use byzclock::sim::{
    Adversary, AdversaryView, Application, ByzOutbox, Envelope, NodeId, SimBuilder, Visibility,
    Wire,
};

/// An adversary that records what it is allowed to observe.
struct Peeker {
    saw_unicast_between_correct: std::sync::atomic::AtomicBool,
    saw_broadcast_content: std::sync::atomic::AtomicBool,
    tried_forgery: std::sync::atomic::AtomicBool,
}

type Msg = <TicketTwoClock as Application>::Msg;

impl Adversary<Msg> for &Peeker {
    fn act(&mut self, view: &AdversaryView<'_, Msg>, out: &mut ByzOutbox<'_, Msg>) {
        use std::sync::atomic::Ordering;
        for e in view.visible() {
            let to_byz = view.is_byzantine(e.to);
            if !to_byz {
                // Under private channels this must never happen.
                self.saw_unicast_between_correct
                    .store(true, Ordering::Relaxed);
            }
            if matches!(e.msg, TwoClockMsg::Clock(_)) {
                self.saw_broadcast_content.store(true, Ordering::Relaxed);
            }
        }
        // Attempt to forge from a correct sender: must be dropped.
        if !self.tried_forgery.swap(true, Ordering::Relaxed) {
            out.send(
                NodeId::new(0), // correct node
                NodeId::new(1),
                TwoClockMsg::Clock(Trit::Zero),
            );
        }
    }
}

#[test]
fn private_channels_hide_correct_unicasts_but_show_broadcasts() {
    let peeker = Peeker {
        saw_unicast_between_correct: Default::default(),
        saw_broadcast_content: Default::default(),
        tried_forgery: Default::default(),
    };
    {
        let mut sim = SimBuilder::new(7, 2)
            .seed(4)
            .build(ticket_two_clock, &peeker);
        sim.run_beats(10);
        // Forged envelope was counted and dropped.
        let forged: u64 = sim
            .stats()
            .per_beat()
            .iter()
            .map(|b| b.forged_dropped)
            .sum();
        assert_eq!(forged, 1, "exactly one forgery attempt must be recorded");
    }
    use std::sync::atomic::Ordering;
    assert!(
        !peeker.saw_unicast_between_correct.load(Ordering::Relaxed),
        "private channels leaked a correct-to-correct unicast"
    );
    assert!(
        peeker.saw_broadcast_content.load(Ordering::Relaxed),
        "broadcast clock values must be visible to the adversary"
    );
}

#[test]
fn omniscient_mode_sees_everything() {
    let peeker = Peeker {
        saw_unicast_between_correct: Default::default(),
        saw_broadcast_content: Default::default(),
        tried_forgery: Default::default(),
    };
    {
        let mut sim = SimBuilder::new(7, 2)
            .seed(4)
            .visibility(Visibility::Omniscient)
            .build(ticket_two_clock, &peeker);
        sim.run_beats(5);
    }
    use std::sync::atomic::Ordering;
    assert!(
        peeker.saw_unicast_between_correct.load(Ordering::Relaxed),
        "omniscient mode must expose correct-to-correct traffic (GVSS rows/echoes)"
    );
}

/// The delivery guarantee (Def. 2.2(1)): a message sent at beat r is
/// processed the same beat — observable as the 2-clock flipping in
/// lockstep from an agreed state with zero latency.
#[test]
fn same_beat_delivery_drives_lockstep_flip() {
    let beacon = OracleBeacon::perfect(3);
    let mut sim = SimBuilder::new(4, 1).seed(1).build(
        move |cfg, _rng| {
            let mut c = TwoClock::new(cfg, beacon.source(cfg.id));
            c.set_clock(Trit::Zero);
            c
        },
        byzclock::sim::SilentAdversary,
    );
    sim.step();
    assert!(sim.correct_apps().all(|(_, a)| a.clock() == Trit::One));
}

/// The §6.3 bounded-delay extension of Def. 2.2(1): a 1-beat window is
/// exactly same-beat delivery (the lockstep flip still happens), and a
/// wider window records every observed delay inside the window.
#[test]
fn bounded_delay_window_bounds_every_delivery() {
    use byzclock::sim::TimingModel;
    let beacon = OracleBeacon::perfect(3);
    let mut sim = SimBuilder::new(4, 1)
        .seed(1)
        .timing(TimingModel::bounded(1))
        .build(
            move |cfg, _rng| {
                let mut c = TwoClock::new(cfg, beacon.source(cfg.id));
                c.set_clock(Trit::Zero);
                c
            },
            byzclock::sim::SilentAdversary,
        );
    sim.step();
    assert!(
        sim.correct_apps().all(|(_, a)| a.clock() == Trit::One),
        "a 1-beat window must reproduce same-beat delivery"
    );
    assert_eq!(
        sim.delay_histogram(),
        &[12],
        "3 senders x 4 targets, all at delay 0"
    );

    let beacon = OracleBeacon::perfect(3);
    let mut sim = SimBuilder::new(4, 1)
        .seed(1)
        .timing(TimingModel::bounded(3))
        .build(
            move |cfg, _rng| TwoClock::new(cfg, beacon.source(cfg.id)),
            byzclock::sim::SilentAdversary,
        );
    sim.run_beats(50);
    let hist = sim.delay_histogram().to_vec();
    assert_eq!(hist.len(), 3, "no delay outside the 3-beat window");
    assert_eq!(hist.iter().sum::<u64>(), 3 * 4 * 50);
    assert!(
        hist.iter().all(|&c| c > 0),
        "uniform window draws: {hist:?}"
    );
}

/// Envelope payloads are delivered unmodified (Def. 2.2(2)): wire encoding
/// is observational only.
#[test]
fn wire_encoding_does_not_affect_payloads() {
    let msg: Msg = TwoClockMsg::Clock(Trit::Bot);
    let mut buf = bytes::BytesMut::new();
    msg.encode(&mut buf);
    assert_eq!(buf.len(), msg.encoded_len());
    let e = Envelope::new(NodeId::new(0), NodeId::new(1), msg.clone());
    assert_eq!(e.msg, msg);
}
