//! Parallel in-beat stepping is a pure wall-clock lever: whatever
//! `step_threads` says, every scenario replays to the byte-identical
//! report. The property holds across protocol families, adversaries, and
//! timing models because the phase barrier in `Simulation::step` fixes
//! the observable order (outboxes collected in node-ID order), and
//! protocols whose randomness is not per-node independent (the shared
//! oracle beacon) are gated back to serial stepping automatically —
//! which this suite covers too, by sweeping oracle rows alongside the
//! GVSS ones.

use byzclock::scenario::{default_registry, ScenarioSpec};
use byzclock::sim::set_step_threads_override;
use proptest::prelude::*;

/// Runs `line` (with `seed` substituted) under a thread-local
/// `step_threads` default and returns the report JSON.
fn run_with_threads(line: &str, seed: u64, threads: usize) -> String {
    let spec = ScenarioSpec::parse(line)
        .unwrap_or_else(|e| panic!("bad spec `{line}`: {e}"))
        .with_seed(seed);
    set_step_threads_override(Some(threads));
    let report = default_registry().run(&spec);
    set_step_threads_override(None);
    report
        .unwrap_or_else(|e| panic!("spec `{line}` failed: {e}"))
        .to_json()
}

/// One row per protocol family × adversary mix worth pinning: the full
/// GVSS stack, the standalone coin under an attacking dealer, the
/// shared-beacon oracle (serial-gated), the O(f) pipeline baseline, and
/// a bounded-delay line so the non-lockstep timing model is covered.
const ROWS: [&str; 7] = [
    "clock-sync n=7 f=2 k=16 coin=ticket adv=silent faults=corrupt-start budget=600",
    "clock-sync n=7 f=2 k=16 coin=ticket adv=silent faults=none budget=30",
    "coin-stream n=4 f=1 coin=ticket adv=coin-noise:4 faults=none budget=40",
    "coin-stream n=7 f=2 coin=ticket adv=silent faults=none budget=30",
    "two-clock n=7 f=2 coin=oracle adv=split-vote faults=corrupt-start budget=2000",
    "pk-clock n=4 f=1 k=32 coin=none adv=silent faults=corrupt-start budget=500",
    "clock-sync n=7 f=2 k=8 coin=oracle adv=silent faults=corrupt-start delay=2 budget=500",
];

proptest! {
    /// For every (row, seed), the serial report and the parallel report
    /// are the same bytes, at 2 and at 4 stepping threads.
    #[test]
    fn parallel_step_reports_are_byte_identical(
        row in 0usize..ROWS.len(),
        seed in 0u64..64,
        threads in prop_oneof![Just(2usize), Just(4usize)],
    ) {
        let line = ROWS[row];
        let serial = run_with_threads(line, seed, 1);
        let parallel = run_with_threads(line, seed, threads);
        prop_assert_eq!(
            serial,
            parallel,
            "step_threads={} changed the report for `{}` seed={}",
            threads,
            line,
            seed
        );
    }
}

/// The pinned seed reports of `tests/scenario_api.rs` replayed at
/// `step_threads=4`: parallel stepping must not move a single golden
/// byte. (The goldens are duplicated here on purpose — a drift fails
/// both suites and names the stepping mode that caused it.)
#[test]
fn parallel_step_preserves_the_golden_reports() {
    let goldens = [
        (
            "clock-sync n=7 f=2 k=64 coin=ticket adv=silent faults=corrupt-start seed=3 budget=3000",
            r#"{"spec":"clock-sync n=7 f=2 k=64 coin=ticket adv=silent faults=corrupt-start seed=3 budget=3000","beats":14,"converged_at":6,"measured_from":0,"final_streak":8,"final_clocks":[7,7,7,7,7],"traffic":{"correct_msgs":5719,"correct_bytes":978222,"byz_msgs":0,"byz_bytes":0,"forged_dropped":0,"phantom_msgs":0,"mean_correct_msgs_per_beat":408.500,"mean_correct_bytes_per_beat":69873.000},"extras":{}}"#,
        ),
        (
            "two-clock n=7 f=2 coin=oracle adv=split-vote faults=corrupt-start seed=5 budget=2000",
            r#"{"spec":"two-clock n=7 f=2 k=8 coin=oracle:500,500 adv=split-vote faults=corrupt-start seed=5 budget=2000","beats":10,"converged_at":2,"measured_from":0,"final_streak":8,"final_clocks":[0,0,0,0,0],"traffic":{"correct_msgs":350,"correct_bytes":700,"byz_msgs":140,"byz_bytes":280,"forged_dropped":0,"phantom_msgs":0,"mean_correct_msgs_per_beat":35.000,"mean_correct_bytes_per_beat":70.000},"extras":{}}"#,
        ),
        (
            "pk-clock n=4 f=1 k=32 coin=none adv=silent faults=corrupt-start seed=1 budget=500",
            r#"{"spec":"pk-clock n=4 f=1 k=32 coin=none adv=silent faults=corrupt-start seed=1 budget=500","beats":33,"converged_at":25,"measured_from":0,"final_streak":8,"final_clocks":[15,15,15],"traffic":{"correct_msgs":2640,"correct_bytes":13524,"byz_msgs":0,"byz_bytes":0,"forged_dropped":0,"phantom_msgs":0,"mean_correct_msgs_per_beat":80.000,"mean_correct_bytes_per_beat":409.818},"extras":{}}"#,
        ),
        (
            "coin-stream n=4 f=1 coin=ticket adv=coin-noise:4 faults=none seed=11 budget=40",
            r#"{"spec":"coin-stream n=4 f=1 k=8 coin=ticket adv=coin-noise:4 faults=none seed=11 budget=40","beats":40,"converged_at":null,"measured_from":0,"final_streak":0,"final_clocks":[],"traffic":{"correct_msgs":1920,"correct_bytes":158976,"byz_msgs":640,"byz_bytes":41120,"forged_dropped":0,"phantom_msgs":0,"mean_correct_msgs_per_beat":48.000,"mean_correct_bytes_per_beat":3974.400},"extras":{"p0":0.694444,"p1":0.305556,"agreement_rate":1.000000,"measured_beats":36.000000}}"#,
        ),
    ];
    let registry = default_registry();
    set_step_threads_override(Some(4));
    for (line, golden) in goldens {
        let spec = ScenarioSpec::parse(line).unwrap();
        let report = registry.run(&spec).unwrap();
        assert_eq!(
            report.to_json(),
            golden,
            "step_threads=4 drifted from the golden report for `{line}`"
        );
    }
    set_step_threads_override(None);
}
