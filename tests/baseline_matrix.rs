//! The baseline algorithms across configurations — the cells of Table 1
//! that are cheap enough to assert in CI.

use byzclock::alg::{all_synced, run_until_stable_sync, DigitalClock};
use byzclock::baselines::{
    BaEquivocator, DwClock, PhaseKingScheme, PkClock, QueenClock, QueenScheme,
};
use byzclock::sim::{Application, SilentAdversary, SimBuilder};

/// Phase-king clock at its maximal legal f for several n, silent faults.
#[test]
fn pk_clock_across_cluster_sizes() {
    for (n, f) in [(4usize, 1usize), (7, 2), (10, 3)] {
        let mut sim = SimBuilder::new(n, f).seed(n as u64).build(
            |cfg, rng| {
                let mut c = PkClock::new(PhaseKingScheme::new(cfg), 32);
                c.corrupt(rng);
                c
            },
            SilentAdversary,
        );
        let r = 2 + 3 * (f + 1);
        let t = run_until_stable_sync(&mut sim, 3_000, 8)
            .unwrap_or_else(|| panic!("n={n}, f={f}: no convergence"));
        assert!(
            t <= (10 * r) as u64,
            "n={n}, f={f}: {t} beats is not O(f)-like (R = {r})"
        );
    }
}

/// Convergence time grows with f (the O(f) row's slope), comparing maximal
/// legal f at n=4 vs n=13.
#[test]
fn pk_clock_convergence_grows_with_f() {
    let measure = |n: usize, f: usize| -> u64 {
        let mut total = 0;
        for seed in 0..5u64 {
            let mut sim = SimBuilder::new(n, f).seed(seed).build(
                |cfg, rng| {
                    let mut c = PkClock::new(PhaseKingScheme::new(cfg), 32);
                    c.corrupt(rng);
                    c
                },
                SilentAdversary,
            );
            total += run_until_stable_sync(&mut sim, 3_000, 8).expect("converges");
        }
        total
    };
    let small = measure(4, 1);
    let large = measure(13, 4);
    assert!(
        large > small,
        "O(f) slope missing: f=1 {small} vs f=4 {large}"
    );
}

/// Queen clock under its designed conditions, with an actively
/// equivocating Byzantine queen.
#[test]
fn queen_clock_tolerates_byzantine_queen_within_budget() {
    for seed in 0..3u64 {
        let mut sim = SimBuilder::new(5, 1).seed(seed).byzantine([0u16]).build(
            |cfg, rng| {
                let mut c = QueenClock::new(QueenScheme::new(cfg), 16);
                c.corrupt(rng);
                c
            },
            BaEquivocator {
                depth: 4,
                mixed_bits: false,
            },
        );
        assert!(
            run_until_stable_sync(&mut sim, 2_000, 8).is_some(),
            "seed {seed}: queen clock failed within its resiliency"
        );
    }
}

/// Dolev–Welch's k-dependence: k=2 converges orders of magnitude faster
/// than k=8 at the same cluster (the F4 trend, asserted cheaply).
#[test]
fn dw_clock_slows_with_k() {
    let measure = |k: u64| -> u64 {
        let mut total = 0;
        for seed in 0..5u64 {
            let mut sim = SimBuilder::new(4, 1).seed(seed).build(
                |cfg, rng| {
                    let mut c = DwClock::new(cfg, k);
                    c.corrupt(rng);
                    c
                },
                SilentAdversary,
            );
            total += run_until_stable_sync(&mut sim, 200_000, 8).expect("converges");
        }
        total
    };
    let fast = measure(2);
    let slow = measure(8);
    assert!(
        slow > fast,
        "k-dependence missing: k=2 {fast} vs k=8 {slow}"
    );
}

/// All clocks share the observer interface: moduli and readings line up.
#[test]
fn digital_clock_interface_consistency() {
    let mut sim = SimBuilder::new(4, 1).seed(1).build(
        |cfg, _rng| PkClock::new(PhaseKingScheme::new(cfg), 12),
        SilentAdversary,
    );
    run_until_stable_sync(&mut sim, 2_000, 8).unwrap();
    for (_, app) in sim.correct_apps() {
        assert_eq!(app.modulus(), 12);
        assert!(app.read().unwrap() < 12);
        // The internal modulus is a multiple of k and covers the window.
        assert_eq!(app.internal_modulus() % 12, 0);
        assert!(app.internal_modulus() >= 4 * app.rounds() as u64);
    }
    let v = all_synced(sim.correct_apps().map(|(_, a)| a.read())).unwrap();
    assert!(v < 12);
}
