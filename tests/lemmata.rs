//! The paper's lemmata as executable cross-crate properties, exercised on
//! the full GVSS stack (unit-level versions live next to each module).

use byzclock::alg::adversary::EquivocatingAdversary;
use byzclock::alg::{all_synced, DigitalClock, Trit};
use byzclock::coin::{ticket_two_clock, TicketTwoClock};
use byzclock::sim::{Application, SilentAdversary, SimBuilder, Simulation};

fn clocks<Adv>(sim: &Simulation<TicketTwoClock, Adv>) -> Vec<Trit>
where
    Adv: byzclock::sim::Adversary<<TicketTwoClock as Application>::Msg>,
{
    sim.correct_apps().map(|(_, a)| a.clock()).collect()
}

/// Lemma 2 on the full stack: an agreed 2-clock value flips in lockstep
/// every beat, coin and adversary notwithstanding.
#[test]
fn lemma_2_lockstep_flip() {
    for start in [Trit::Zero, Trit::One] {
        let mut sim = SimBuilder::new(7, 2).seed(8).build(
            move |cfg, rng| {
                let mut c = ticket_two_clock(cfg, rng);
                c.set_clock(start);
                c
            },
            EquivocatingAdversary,
        );
        let mut expected = start;
        for _ in 0..30 {
            sim.step();
            expected = expected.flipped();
            assert!(clocks(&sim).iter().all(|&c| c == expected));
        }
    }
}

/// Lemma 3-flavored invariant under an equivocating adversary: after any
/// beat in which the coin agreed (which we detect post-hoc via last_rand),
/// the definite clock values form a single value.
#[test]
fn lemma_3_safe_beats_give_single_value() {
    let mut sim = SimBuilder::new(7, 2).seed(12).build(
        |cfg, rng| {
            let mut c = ticket_two_clock(cfg, rng);
            c.corrupt(rng);
            c
        },
        EquivocatingAdversary,
    );
    let mut safe_beats = 0;
    for _ in 0..60 {
        sim.step();
        let rands: Vec<bool> = sim.correct_apps().map(|(_, a)| a.last_rand()).collect();
        let safe = rands.windows(2).all(|w| w[0] == w[1]);
        if safe {
            safe_beats += 1;
            let definite: Vec<u64> = sim.correct_apps().filter_map(|(_, a)| a.read()).collect();
            assert!(
                definite.windows(2).all(|w| w[0] == w[1]),
                "two definite values after a safe beat: {definite:?}"
            );
        }
    }
    assert!(
        safe_beats >= 20,
        "the GVSS coin should make most beats safe: {safe_beats}/60"
    );
}

/// Theorem 2's high-probability form (Remark 3.2): over many seeds the
/// convergence tail decays — quantified loosely as "most trials converge
/// within a small constant, none take more than a small multiple of it".
#[test]
fn theorem_2_tail_decays() {
    let mut times = Vec::new();
    for seed in 0..15u64 {
        let mut sim = SimBuilder::new(4, 1).seed(seed).build(
            |cfg, rng| {
                let mut c = ticket_two_clock(cfg, rng);
                c.corrupt(rng);
                c
            },
            SilentAdversary,
        );
        let t = sim
            .run_until(2_000, |s| {
                all_synced(s.correct_apps().map(|(_, a)| a.read())).is_some()
            })
            .expect("2-clock converges");
        times.push(t);
    }
    times.sort_unstable();
    let median = times[times.len() / 2];
    let max = *times.last().unwrap();
    assert!(
        median <= 30,
        "median convergence {median} not constant-like"
    );
    assert!(
        max <= 40 * median.max(4),
        "tail too heavy: median {median}, max {max}"
    );
}

/// Closure of the 2-clock beyond the exhaustively checked menu: the model
/// checker proves closure whole at n=4, f=1; here the *same seam*
/// ([`byzclock::mcheck::TwoClockModel::step_joint`], driving the real
/// cores) is sampled at n=7, f=2 — from an agreed clock, every sampled
/// Byzantine letter assignment (including duplicate-sender pairs) and
/// every sampled coin split leaves the cluster agreed on the flipped
/// value.
#[test]
fn closure_lemma_two_clock_sampled_at_n7_f2() {
    use byzclock::mcheck::two_clock::{ByzLetter, LETTERS};
    use byzclock::mcheck::TwoClockModel;
    use byzclock::sim::SimRng;
    use rand::{Rng as _, SeedableRng as _};

    let model = TwoClockModel::honest(7, 2);
    let c = 5; // correct nodes
    let mut rng = SimRng::seed_from_u64(77);
    for start in [Trit::Zero, Trit::One] {
        let state = vec![start; c];
        for trial in 0..400 {
            let letters: Vec<Vec<ByzLetter>> = (0..c)
                .map(|_| {
                    (0..2)
                        .map(|_| LETTERS[rng.random_range(0..LETTERS.len())])
                        .collect()
                })
                .collect();
            let bits: Vec<bool> = match trial % 3 {
                0 => vec![false; c],
                1 => vec![true; c],
                _ => (0..c).map(|_| rng.random()).collect(),
            };
            let next = model.step_joint(&state, &letters, &bits);
            assert!(
                next.iter().all(|&t| t == start.flipped()),
                "closure broken at n=7 f=2: {start:?} -> {next:?} under {letters:?}"
            );
        }
    }
}

/// bd-clock closure at `delay >= 2` under continued Byzantine fire: the
/// core's own closure test runs silent; here the cluster first converges
/// *against* tag-lying adversaries and must then keep ticking once per
/// beat, still under fire. (The checker proves closure whole at n=4,
/// f=1, window=1 and sweeps window=2 under a state cap — this samples
/// the same property at real scale, n=7, f=2, k=8.)
#[test]
fn closure_lemma_bd_clock_at_delay_2_under_tag_lies() {
    use byzclock::alg::{
        run_until_stable_sync, BdClock, OracleBeacon, RandomTagAdversary, TagEquivocator,
    };
    use byzclock::sim::TimingModel;

    for delay in [2u64, 3] {
        for seed in 0..2u64 {
            for equivocate in [false, true] {
                let beacon = OracleBeacon::perfect(seed.wrapping_mul(31).wrapping_add(9));
                let build = move |cfg: byzclock::sim::NodeCfg, _rng: &mut byzclock::sim::SimRng| {
                    BdClock::new(cfg, 8, delay, beacon.source(cfg.id))
                };
                let builder = SimBuilder::new(7, 2)
                    .seed(seed)
                    .timing(TimingModel::bounded(delay))
                    .corrupted_start(true);
                let (v0, trail) = if equivocate {
                    let mut sim = builder.build(build, TagEquivocator { k: 8 });
                    run_until_stable_sync(&mut sim, 3_000, 8).expect("converges under fire");
                    let v0 = all_synced(sim.correct_apps().map(|(_, a)| a.read())).unwrap();
                    let trail: Vec<_> = (0..50)
                        .map(|_| {
                            sim.step();
                            all_synced(sim.correct_apps().map(|(_, a)| a.read()))
                        })
                        .collect();
                    (v0, trail)
                } else {
                    let mut sim = builder.build(build, RandomTagAdversary { k: 8 });
                    run_until_stable_sync(&mut sim, 3_000, 8).expect("converges under fire");
                    let v0 = all_synced(sim.correct_apps().map(|(_, a)| a.read())).unwrap();
                    let trail: Vec<_> = (0..50)
                        .map(|_| {
                            sim.step();
                            all_synced(sim.correct_apps().map(|(_, a)| a.read()))
                        })
                        .collect();
                    (v0, trail)
                };
                for (i, v) in trail.iter().enumerate() {
                    let v = v.unwrap_or_else(|| {
                        panic!(
                            "closure broken (delay={delay} seed={seed} eq={equivocate}) beat {i}"
                        )
                    });
                    assert_eq!(
                        v,
                        (v0 + 1 + i as u64) % 8,
                        "synced clock skipped (delay={delay} seed={seed} eq={equivocate})"
                    );
                }
            }
        }
    }
}

/// Observation 3.1 at the system level: no beat ever certifies two
/// different values at the n - f threshold, even with equivocating
/// Byzantine votes — detected by watching for "split flips" (two correct
/// nodes flipping to different definite values out of a non-agreed state).
#[test]
fn observation_3_1_no_conflicting_certificates() {
    let mut sim = SimBuilder::new(7, 2).seed(21).build(
        |cfg, rng| {
            let mut c = ticket_two_clock(cfg, rng);
            c.corrupt(rng);
            c
        },
        EquivocatingAdversary,
    );
    for _ in 0..80 {
        let before: Vec<Trit> = clocks(&sim);
        sim.step();
        let after: Vec<Trit> = clocks(&sim);
        // Any two nodes that both hold definite values after the beat and
        // did NOT merely flip an agreed value must agree (the rand
        // substitution differs per node only below the threshold).
        let rands: Vec<bool> = sim.correct_apps().map(|(_, a)| a.last_rand()).collect();
        let safe = rands.windows(2).all(|w| w[0] == w[1]);
        if safe {
            let definite: Vec<u64> = after
                .iter()
                .filter_map(|t| t.bit().map(u64::from))
                .collect();
            assert!(
                definite.windows(2).all(|w| w[0] == w[1]),
                "conflicting certificates: before={before:?} after={after:?}"
            );
        }
    }
}
