//! The paper's lemmata as executable cross-crate properties, exercised on
//! the full GVSS stack (unit-level versions live next to each module).

use byzclock::alg::adversary::EquivocatingAdversary;
use byzclock::alg::{all_synced, DigitalClock, Trit};
use byzclock::coin::{ticket_two_clock, TicketTwoClock};
use byzclock::sim::{Application, SilentAdversary, SimBuilder, Simulation};

fn clocks<Adv>(sim: &Simulation<TicketTwoClock, Adv>) -> Vec<Trit>
where
    Adv: byzclock::sim::Adversary<<TicketTwoClock as Application>::Msg>,
{
    sim.correct_apps().map(|(_, a)| a.clock()).collect()
}

/// Lemma 2 on the full stack: an agreed 2-clock value flips in lockstep
/// every beat, coin and adversary notwithstanding.
#[test]
fn lemma_2_lockstep_flip() {
    for start in [Trit::Zero, Trit::One] {
        let mut sim = SimBuilder::new(7, 2).seed(8).build(
            move |cfg, rng| {
                let mut c = ticket_two_clock(cfg, rng);
                c.set_clock(start);
                c
            },
            EquivocatingAdversary,
        );
        let mut expected = start;
        for _ in 0..30 {
            sim.step();
            expected = expected.flipped();
            assert!(clocks(&sim).iter().all(|&c| c == expected));
        }
    }
}

/// Lemma 3-flavored invariant under an equivocating adversary: after any
/// beat in which the coin agreed (which we detect post-hoc via last_rand),
/// the definite clock values form a single value.
#[test]
fn lemma_3_safe_beats_give_single_value() {
    let mut sim = SimBuilder::new(7, 2).seed(12).build(
        |cfg, rng| {
            let mut c = ticket_two_clock(cfg, rng);
            c.corrupt(rng);
            c
        },
        EquivocatingAdversary,
    );
    let mut safe_beats = 0;
    for _ in 0..60 {
        sim.step();
        let rands: Vec<bool> = sim.correct_apps().map(|(_, a)| a.last_rand()).collect();
        let safe = rands.windows(2).all(|w| w[0] == w[1]);
        if safe {
            safe_beats += 1;
            let definite: Vec<u64> = sim.correct_apps().filter_map(|(_, a)| a.read()).collect();
            assert!(
                definite.windows(2).all(|w| w[0] == w[1]),
                "two definite values after a safe beat: {definite:?}"
            );
        }
    }
    assert!(
        safe_beats >= 20,
        "the GVSS coin should make most beats safe: {safe_beats}/60"
    );
}

/// Theorem 2's high-probability form (Remark 3.2): over many seeds the
/// convergence tail decays — quantified loosely as "most trials converge
/// within a small constant, none take more than a small multiple of it".
#[test]
fn theorem_2_tail_decays() {
    let mut times = Vec::new();
    for seed in 0..15u64 {
        let mut sim = SimBuilder::new(4, 1).seed(seed).build(
            |cfg, rng| {
                let mut c = ticket_two_clock(cfg, rng);
                c.corrupt(rng);
                c
            },
            SilentAdversary,
        );
        let t = sim
            .run_until(2_000, |s| {
                all_synced(s.correct_apps().map(|(_, a)| a.read())).is_some()
            })
            .expect("2-clock converges");
        times.push(t);
    }
    times.sort_unstable();
    let median = times[times.len() / 2];
    let max = *times.last().unwrap();
    assert!(
        median <= 30,
        "median convergence {median} not constant-like"
    );
    assert!(
        max <= 40 * median.max(4),
        "tail too heavy: median {median}, max {max}"
    );
}

/// Observation 3.1 at the system level: no beat ever certifies two
/// different values at the n - f threshold, even with equivocating
/// Byzantine votes — detected by watching for "split flips" (two correct
/// nodes flipping to different definite values out of a non-agreed state).
#[test]
fn observation_3_1_no_conflicting_certificates() {
    let mut sim = SimBuilder::new(7, 2).seed(21).build(
        |cfg, rng| {
            let mut c = ticket_two_clock(cfg, rng);
            c.corrupt(rng);
            c
        },
        EquivocatingAdversary,
    );
    for _ in 0..80 {
        let before: Vec<Trit> = clocks(&sim);
        sim.step();
        let after: Vec<Trit> = clocks(&sim);
        // Any two nodes that both hold definite values after the beat and
        // did NOT merely flip an agreed value must agree (the rand
        // substitution differs per node only below the threshold).
        let rands: Vec<bool> = sim.correct_apps().map(|(_, a)| a.last_rand()).collect();
        let safe = rands.windows(2).all(|w| w[0] == w[1]);
        if safe {
            let definite: Vec<u64> = after
                .iter()
                .filter_map(|t| t.bit().map(u64::from))
                .collect();
            assert!(
                definite.windows(2).all(|w| w[0] == w[1]),
                "conflicting certificates: before={before:?} after={after:?}"
            );
        }
    }
}
