//! Wire-encoding properties across every protocol message type: the
//! declared `encoded_len` always equals the actual encoding length (the
//! message-complexity experiment M1 depends on it).

use bytes::BytesMut;
use byzclock::alg::{
    ClockSyncMsg, FourClockMsg, LevelMsg, SharedFourClockMsg, SlotMsg, Trit, TwoClockMsg,
};
use byzclock::coin::CoinMsg;
use byzclock::sim::Wire;
use proptest::prelude::*;

fn actual_len<T: Wire>(v: &T) -> usize {
    let mut buf = BytesMut::new();
    v.encode(&mut buf);
    buf.len()
}

fn trit_strategy() -> impl Strategy<Value = Trit> {
    prop_oneof![Just(Trit::Zero), Just(Trit::One), Just(Trit::Bot)]
}

fn coin_msg_strategy() -> impl Strategy<Value = CoinMsg> {
    let rows = proptest::collection::vec(proptest::collection::vec(any::<u64>(), 0..4), 0..4)
        .prop_map(|rows| CoinMsg::Row { rows });
    let echo = proptest::collection::vec(
        proptest::option::of(proptest::collection::vec(any::<u64>(), 0..4)),
        0..5,
    )
    .prop_map(|points| CoinMsg::Echo { points });
    let vote = proptest::collection::vec(any::<bool>(), 0..8)
        .prop_map(|content| CoinMsg::Vote { content });
    let recover = proptest::collection::vec(
        proptest::option::of(proptest::collection::vec(any::<u64>(), 0..4)),
        0..5,
    )
    .prop_map(|shares| CoinMsg::Recover { shares });
    prop_oneof![rows, echo, vote, recover]
}

proptest! {
    #[test]
    fn coin_msg_len(msg in coin_msg_strategy()) {
        prop_assert_eq!(msg.encoded_len(), actual_len(&msg));
    }

    #[test]
    fn slot_msg_len(slot in any::<u8>(), msg in coin_msg_strategy()) {
        let m = SlotMsg { slot, msg };
        prop_assert_eq!(m.encoded_len(), actual_len(&m));
    }

    #[test]
    fn two_clock_msg_len(t in trit_strategy(), coin in any::<u64>(), pick in any::<bool>()) {
        let m: TwoClockMsg<u64> =
            if pick { TwoClockMsg::Clock(t) } else { TwoClockMsg::Coin(coin) };
        prop_assert_eq!(m.encoded_len(), actual_len(&m));
    }

    #[test]
    fn four_clock_msg_len(t in trit_strategy(), a1 in any::<bool>()) {
        let inner = TwoClockMsg::<u64>::Clock(t);
        let m = if a1 { FourClockMsg::A1(inner) } else { FourClockMsg::A2(inner) };
        prop_assert_eq!(m.encoded_len(), actual_len(&m));
    }

    #[test]
    fn shared_four_clock_msg_len(t in trit_strategy(), which in 0u8..3, coin in any::<u64>()) {
        let m: SharedFourClockMsg<u64> = match which {
            0 => SharedFourClockMsg::A1Vote(t),
            1 => SharedFourClockMsg::A2Vote(t),
            _ => SharedFourClockMsg::Coin(coin),
        };
        prop_assert_eq!(m.encoded_len(), actual_len(&m));
    }

    #[test]
    fn clock_sync_msg_len(which in 0u8..5, v in any::<u64>(), p in proptest::option::of(any::<u64>()), b in any::<bool>(), t in trit_strategy()) {
        let m: ClockSyncMsg<u64> = match which {
            0 => ClockSyncMsg::Four(FourClockMsg::A1(TwoClockMsg::Clock(t))),
            1 => ClockSyncMsg::Full(v),
            2 => ClockSyncMsg::Propose(p),
            3 => ClockSyncMsg::BitVote(b),
            _ => ClockSyncMsg::Coin(v),
        };
        prop_assert_eq!(m.encoded_len(), actual_len(&m));
    }

    #[test]
    fn level_msg_len(level in any::<u8>(), t in trit_strategy()) {
        let m = LevelMsg { level, msg: TwoClockMsg::<u64>::Clock(t) };
        prop_assert_eq!(m.encoded_len(), actual_len(&m));
    }

    #[test]
    fn ba_msg_len(which in 0u8..4, v in any::<u64>(), p in proptest::option::of(any::<u64>()), b in any::<bool>(), bp in proptest::option::of(any::<bool>())) {
        use byzclock::baselines::BaMsg;
        let m = match which {
            0 => BaMsg::Val(v),
            1 => BaMsg::Perm(p),
            2 => BaMsg::Bit(b),
            _ => BaMsg::BitProp(bp),
        };
        prop_assert_eq!(m.encoded_len(), actual_len(&m));
    }

    #[test]
    fn dw_msg_len(v in any::<u64>()) {
        let m = byzclock::baselines::DwMsg(v);
        prop_assert_eq!(m.encoded_len(), actual_len(&m));
    }
}
