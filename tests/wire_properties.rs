//! Wire-codec properties across every protocol message type: the declared
//! lengths always equal the actual encoding length (experiment M1 depends
//! on it), encode→decode is the identity in **both** formats for arbitrary
//! — not just honest — values, and no byte string, however hostile, can
//! panic a decoder (it yields `None` or a shape-valid message).

use bytes::BytesMut;
use byzclock::alg::{
    ClockSyncMsg, FourClockMsg, LevelMsg, RoundMsg, SharedFourClockMsg, SlotMsg, Trit, TwoClockMsg,
};
use byzclock::baselines::{BaMsg, DwMsg};
use byzclock::coin::{CoinMsg, CommitteeMsg};
use byzclock::sim::{Wire, WireFormat};
use proptest::prelude::*;

fn actual_len<T: Wire>(v: &T) -> usize {
    let mut buf = BytesMut::new();
    v.encode(&mut buf);
    buf.len()
}

/// Encode in `format`, assert the declared length, decode back, assert
/// identity. The workhorse of every round-trip property below.
fn assert_round_trips<T: Wire + PartialEq + std::fmt::Debug>(v: &T) {
    for format in [WireFormat::Fixed, WireFormat::Packed] {
        let mut buf = BytesMut::new();
        format.encode_into(v, &mut buf);
        assert_eq!(
            buf.len(),
            format.len_of(v),
            "declared {format:?} length drifted for {v:?}"
        );
        let back: T = format
            .decode_from(buf.as_slice())
            .unwrap_or_else(|| panic!("{v:?} failed to decode in {format:?}"));
        assert_eq!(&back, v, "{format:?} round trip changed the value");
        // Every strict prefix is a truncated message and must fail.
        for cut in 0..buf.len() {
            assert!(
                format.decode_from::<T>(&buf.as_slice()[..cut]).is_none(),
                "truncation at {cut}/{} must fail for {v:?} ({format:?})",
                buf.len()
            );
        }
    }
}

fn trit_strategy() -> impl Strategy<Value = Trit> {
    prop_oneof![Just(Trit::Zero), Just(Trit::One), Just(Trit::Bot)]
}

fn coin_msg_strategy() -> impl Strategy<Value = CoinMsg> {
    let rows = proptest::collection::vec(proptest::collection::vec(any::<u64>(), 0..4), 0..4)
        .prop_map(|rows| CoinMsg::Row { rows });
    let echo = proptest::collection::vec(
        proptest::option::of(proptest::collection::vec(any::<u64>(), 0..4)),
        0..5,
    )
    .prop_map(|points| CoinMsg::Echo { points });
    let vote = proptest::collection::vec(any::<bool>(), 0..8)
        .prop_map(|content| CoinMsg::Vote { content });
    let recover = proptest::collection::vec(
        proptest::option::of(proptest::collection::vec(any::<u64>(), 0..4)),
        0..5,
    )
    .prop_map(|shares| CoinMsg::Recover { shares });
    prop_oneof![rows, echo, vote, recover]
}

fn committee_msg_strategy() -> impl Strategy<Value = CommitteeMsg> {
    prop_oneof![
        coin_msg_strategy().prop_map(CommitteeMsg::Gvss),
        any::<bool>().prop_map(CommitteeMsg::Relay),
    ]
}

fn ba_msg_strategy() -> impl Strategy<Value = BaMsg> {
    (
        0u8..4,
        any::<u64>(),
        proptest::option::of(any::<u64>()),
        any::<bool>(),
        proptest::option::of(any::<bool>()),
    )
        .prop_map(|(which, v, p, b, bp)| match which {
            0 => BaMsg::Val(v),
            1 => BaMsg::Perm(p),
            2 => BaMsg::Bit(b),
            _ => BaMsg::BitProp(bp),
        })
}

fn clock_sync_msg_strategy() -> impl Strategy<Value = ClockSyncMsg<CoinMsg>> {
    (
        0u8..5,
        any::<u64>(),
        proptest::option::of(any::<u64>()),
        trit_strategy(),
        coin_msg_strategy(),
    )
        .prop_map(|(which, v, p, t, coin)| match which {
            0 => ClockSyncMsg::Four(FourClockMsg::A1(TwoClockMsg::Clock(t))),
            1 => ClockSyncMsg::Full(v),
            2 => ClockSyncMsg::Propose(p),
            3 => ClockSyncMsg::BitVote(v % 2 == 0),
            _ => ClockSyncMsg::Coin(coin),
        })
}

proptest! {
    #[test]
    fn coin_msg_len(msg in coin_msg_strategy()) {
        prop_assert_eq!(msg.encoded_len(), actual_len(&msg));
    }

    #[test]
    fn slot_msg_len(slot in any::<u8>(), msg in coin_msg_strategy()) {
        let m = SlotMsg { slot, msg };
        prop_assert_eq!(m.encoded_len(), actual_len(&m));
    }

    #[test]
    fn committee_msg_len(msg in committee_msg_strategy()) {
        prop_assert_eq!(msg.encoded_len(), actual_len(&msg));
    }

    #[test]
    fn two_clock_msg_len(t in trit_strategy(), coin in any::<u64>(), pick in any::<bool>()) {
        let m: TwoClockMsg<u64> =
            if pick { TwoClockMsg::Clock(t) } else { TwoClockMsg::Coin(coin) };
        prop_assert_eq!(m.encoded_len(), actual_len(&m));
    }

    #[test]
    fn four_clock_msg_len(t in trit_strategy(), a1 in any::<bool>()) {
        let inner = TwoClockMsg::<u64>::Clock(t);
        let m = if a1 { FourClockMsg::A1(inner) } else { FourClockMsg::A2(inner) };
        prop_assert_eq!(m.encoded_len(), actual_len(&m));
    }

    #[test]
    fn shared_four_clock_msg_len(t in trit_strategy(), which in 0u8..3, coin in any::<u64>()) {
        let m: SharedFourClockMsg<u64> = match which {
            0 => SharedFourClockMsg::A1Vote(t),
            1 => SharedFourClockMsg::A2Vote(t),
            _ => SharedFourClockMsg::Coin(coin),
        };
        prop_assert_eq!(m.encoded_len(), actual_len(&m));
    }

    #[test]
    fn clock_sync_msg_len(which in 0u8..5, v in any::<u64>(), p in proptest::option::of(any::<u64>()), b in any::<bool>(), t in trit_strategy()) {
        let m: ClockSyncMsg<u64> = match which {
            0 => ClockSyncMsg::Four(FourClockMsg::A1(TwoClockMsg::Clock(t))),
            1 => ClockSyncMsg::Full(v),
            2 => ClockSyncMsg::Propose(p),
            3 => ClockSyncMsg::BitVote(b),
            _ => ClockSyncMsg::Coin(v),
        };
        prop_assert_eq!(m.encoded_len(), actual_len(&m));
    }

    #[test]
    fn level_msg_len(level in any::<u8>(), t in trit_strategy()) {
        let m = LevelMsg { level, msg: TwoClockMsg::<u64>::Clock(t) };
        prop_assert_eq!(m.encoded_len(), actual_len(&m));
    }

    #[test]
    fn ba_msg_len(m in ba_msg_strategy()) {
        prop_assert_eq!(m.encoded_len(), actual_len(&m));
    }

    #[test]
    fn dw_msg_len(v in any::<u64>()) {
        let m = DwMsg(v);
        prop_assert_eq!(m.encoded_len(), actual_len(&m));
    }

    // --- encode -> decode round trips, both formats, arbitrary values ---

    #[test]
    fn coin_msg_round_trips(msg in coin_msg_strategy()) {
        assert_round_trips(&msg);
    }

    #[test]
    fn slot_and_round_tagged_coin_msgs_round_trip(tag in any::<u8>(), msg in coin_msg_strategy()) {
        assert_round_trips(&SlotMsg { slot: tag, msg: msg.clone() });
        assert_round_trips(&RoundMsg { round: tag, msg });
    }

    #[test]
    fn committee_msgs_round_trip(slot in any::<u8>(), msg in committee_msg_strategy()) {
        assert_round_trips(&msg);
        // The shape the pipelined committee coin actually ships.
        assert_round_trips(&SlotMsg { slot, msg });
    }

    #[test]
    fn two_and_four_clock_msgs_round_trip(t in trit_strategy(), coin in coin_msg_strategy(), which in 0u8..4) {
        let two: TwoClockMsg<CoinMsg> = match which % 2 {
            0 => TwoClockMsg::Clock(t),
            _ => TwoClockMsg::Coin(coin),
        };
        assert_round_trips(&two);
        let four = if which < 2 { FourClockMsg::A1(two) } else { FourClockMsg::A2(two) };
        assert_round_trips(&four);
    }

    #[test]
    fn shared_four_clock_msgs_round_trip(t in trit_strategy(), coin in coin_msg_strategy(), which in 0u8..3) {
        let m: SharedFourClockMsg<CoinMsg> = match which {
            0 => SharedFourClockMsg::A1Vote(t),
            1 => SharedFourClockMsg::A2Vote(t),
            _ => SharedFourClockMsg::Coin(coin),
        };
        assert_round_trips(&m);
    }

    #[test]
    fn clock_sync_msgs_round_trip(m in clock_sync_msg_strategy()) {
        assert_round_trips(&m);
    }

    #[test]
    fn level_msgs_round_trip(level in any::<u8>(), t in trit_strategy()) {
        assert_round_trips(&LevelMsg { level, msg: TwoClockMsg::<u64>::Clock(t) });
    }

    #[test]
    fn baseline_msgs_round_trip(m in ba_msg_strategy(), slot in any::<u8>(), v in any::<u64>()) {
        assert_round_trips(&m);
        assert_round_trips(&SlotMsg { slot, msg: m });
        assert_round_trips(&DwMsg(v));
    }

    #[test]
    fn bd_clock_msgs_round_trip(round in any::<u8>()) {
        assert_round_trips(&RoundMsg { round, msg: () });
    }

    // --- fuzz: hostile bytes never panic a decoder ---

    #[test]
    fn garbage_bytes_never_panic_any_decoder(bytes in proptest::collection::vec(any::<u8>(), 0..96)) {
        for format in [WireFormat::Fixed, WireFormat::Packed] {
            let _ = format.decode_from::<CoinMsg>(&bytes);
            let _ = format.decode_from::<CommitteeMsg>(&bytes);
            let _ = format.decode_from::<SlotMsg<CoinMsg>>(&bytes);
            let _ = format.decode_from::<SlotMsg<CommitteeMsg>>(&bytes);
            let _ = format.decode_from::<RoundMsg<()>>(&bytes);
            let _ = format.decode_from::<TwoClockMsg<CoinMsg>>(&bytes);
            let _ = format.decode_from::<FourClockMsg<CoinMsg>>(&bytes);
            let _ = format.decode_from::<SharedFourClockMsg<CoinMsg>>(&bytes);
            let _ = format.decode_from::<ClockSyncMsg<CoinMsg>>(&bytes);
            let _ = format.decode_from::<LevelMsg<CoinMsg>>(&bytes);
            let _ = format.decode_from::<BaMsg>(&bytes);
            let _ = format.decode_from::<DwMsg>(&bytes);
            let _ = format.decode_from::<Trit>(&bytes);
        }
    }

    /// Decoded garbage, when it *does* parse, is shape-valid: re-encoding
    /// it round-trips (the decoder never fabricates unencodable values).
    #[test]
    fn parsed_garbage_is_shape_valid(bytes in proptest::collection::vec(any::<u8>(), 0..96)) {
        for format in [WireFormat::Fixed, WireFormat::Packed] {
            if let Some(msg) = format.decode_from::<CoinMsg>(&bytes) {
                let mut buf = BytesMut::new();
                format.encode_into(&msg, &mut buf);
                prop_assert_eq!(format.decode_from::<CoinMsg>(buf.as_slice()), Some(msg));
            }
        }
    }
}
