//! Cross-crate integration: the paper's full construction (GVSS ticket
//! coin → pipelined coin → 2-clock → 4-clock → k-clock) under adversaries,
//! driven end to end through the scenario API.

use byzclock::scenario::{
    default_registry, AdversarySpec, ProtocolRegistry, Scenario, ScenarioSpec,
};

fn spec(n: usize, f: usize, k: u64, seed: u64, adversary: AdversarySpec) -> ScenarioSpec {
    // Defaults: ticket coin, corrupted start — the paper's measurement
    // setup for the full stack.
    ScenarioSpec::new("clock-sync", n, f)
        .with_modulus(k)
        .with_adversary(adversary)
        .with_seed(seed)
        .with_budget(3_000)
}

fn converges(registry: &ProtocolRegistry, spec: &ScenarioSpec) -> bool {
    registry
        .run(spec)
        .expect("clock-sync registered")
        .converged_at
        .is_some()
}

#[test]
fn converges_under_silent_adversary() {
    let registry = default_registry();
    for seed in 0..4 {
        assert!(
            converges(&registry, &spec(7, 2, 32, seed, AdversarySpec::Silent)),
            "seed {seed}: full stack failed to converge"
        );
    }
}

#[test]
fn converges_under_random_votes() {
    let registry = default_registry();
    for seed in 0..3 {
        assert!(
            converges(&registry, &spec(7, 2, 32, seed, AdversarySpec::RandomVote)),
            "seed {seed}"
        );
    }
}

#[test]
fn converges_under_equivocation() {
    let registry = default_registry();
    for seed in 0..3 {
        assert!(
            converges(&registry, &spec(7, 2, 32, seed, AdversarySpec::Equivocate)),
            "seed {seed}"
        );
    }
}

#[test]
fn converges_under_threshold_splitter() {
    let registry = default_registry();
    for seed in 0..3 {
        assert!(
            converges(&registry, &spec(7, 2, 32, seed, AdversarySpec::SplitVote)),
            "seed {seed}"
        );
    }
}

/// Lemma 6 at full scale: once stably synced, the clock increments by one
/// (mod k) for a long horizon.
#[test]
fn closure_holds_for_long_horizon() {
    let spec = spec(7, 2, 16, 5, AdversarySpec::Silent);
    let mut run = Scenario::start(&spec).expect("clock-sync registered");
    let report = byzclock::scenario::drive(run.as_mut(), &spec, 8);
    report.converged_at.expect("converged");
    let mut v = run.synced().expect("synced at convergence");
    for _ in 0..200 {
        run.step();
        let next = run.synced().expect("closure violated");
        assert_eq!(next, (v + 1) % 16);
        v = next;
    }
}

/// Determinism: identical specs replay the identical run; different seeds
/// still converge (Monte-Carlo validity).
#[test]
fn runs_are_deterministic_in_the_seed() {
    let registry = default_registry();
    let run = |seed: u64| {
        registry
            .run(&spec(4, 1, 8, seed, AdversarySpec::Silent))
            .unwrap()
    };
    assert_eq!(run(42), run(42));
    assert!(run(42).converged_at.is_some());
    assert!(run(43).converged_at.is_some());
}

/// The recursive §5 construction over real GVSS coins converges and
/// reports through the same API as the main construction.
#[test]
fn recursive_clock_full_stack() {
    let spec = ScenarioSpec::new("recursive", 4, 1)
        .with_modulus(8)
        .with_seed(9)
        .with_budget(6_000);
    let report = Scenario::run(&spec).expect("recursive/ticket registered");
    assert!(
        report.converged_at.is_some(),
        "recursive 8-clock over GVSS coins failed to converge: {report:?}"
    );
}

/// Remark 4.1 variant at full scale.
#[test]
fn shared_four_clock_full_stack() {
    let spec = ScenarioSpec::new("shared-four-clock", 7, 2)
        .with_seed(3)
        .with_budget(3_000);
    assert!(Scenario::run(&spec).unwrap().converged_at.is_some());
}
