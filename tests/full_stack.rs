//! Cross-crate integration: the paper's full construction (GVSS ticket
//! coin → pipelined coin → 2-clock → 4-clock → k-clock) under adversaries.

use byzclock::alg::adversary::{
    EquivocatingAdversary, RandomVoteAdversary, SplitVoteAdversary,
};
use byzclock::alg::{all_synced, run_until_stable_sync, DigitalClock};
use byzclock::coin::{ticket_clock_sync, TicketClockSync};
use byzclock::sim::{Adversary, Application, SilentAdversary, SimBuilder, Simulation};

fn build<Adv: Adversary<<TicketClockSync as Application>::Msg>>(
    n: usize,
    f: usize,
    k: u64,
    seed: u64,
    adv: Adv,
) -> Simulation<TicketClockSync, Adv> {
    SimBuilder::new(n, f).seed(seed).build(
        |cfg, rng| {
            let mut c = ticket_clock_sync(cfg, k, rng);
            c.corrupt(rng);
            c
        },
        adv,
    )
}

#[test]
fn converges_under_silent_adversary() {
    for seed in 0..4 {
        let mut sim = build(7, 2, 32, seed, SilentAdversary);
        let t = run_until_stable_sync(&mut sim, 3_000, 8);
        assert!(t.is_some(), "seed {seed}: full stack failed to converge");
    }
}

#[test]
fn converges_under_random_votes() {
    for seed in 0..3 {
        let mut sim = build(7, 2, 32, seed, RandomVoteAdversary);
        assert!(run_until_stable_sync(&mut sim, 3_000, 8).is_some(), "seed {seed}");
    }
}

#[test]
fn converges_under_equivocation() {
    for seed in 0..3 {
        let mut sim = build(7, 2, 32, seed, EquivocatingAdversary);
        assert!(run_until_stable_sync(&mut sim, 3_000, 8).is_some(), "seed {seed}");
    }
}

#[test]
fn converges_under_threshold_splitter() {
    for seed in 0..3 {
        let mut sim = build(7, 2, 32, seed, SplitVoteAdversary);
        assert!(run_until_stable_sync(&mut sim, 3_000, 8).is_some(), "seed {seed}");
    }
}

/// Lemma 6 at full scale: once stably synced, the clock increments by one
/// (mod k) for a long horizon.
#[test]
fn closure_holds_for_long_horizon() {
    let mut sim = build(7, 2, 16, 5, SilentAdversary);
    run_until_stable_sync(&mut sim, 3_000, 8).expect("converged");
    let mut v = all_synced(sim.correct_apps().map(|(_, a)| a.read())).unwrap();
    for _ in 0..200 {
        sim.step();
        let next =
            all_synced(sim.correct_apps().map(|(_, a)| a.read())).expect("closure violated");
        assert_eq!(next, (v + 1) % 16);
        v = next;
    }
}

/// Determinism: identical seeds replay the identical run, different seeds
/// differ (Monte-Carlo validity).
#[test]
fn runs_are_deterministic_in_the_seed() {
    let run = |seed: u64| {
        let mut sim = build(4, 1, 8, seed, SilentAdversary);
        let t = run_until_stable_sync(&mut sim, 3_000, 8);
        let clocks: Vec<_> = sim.correct_apps().map(|(_, a)| a.full_clock()).collect();
        (t, clocks, sim.stats().total_correct_msgs())
    };
    assert_eq!(run(42), run(42));
    let (_, _, msgs_a) = run(42);
    let (_, _, msgs_b) = run(43);
    // Same protocol, same topology: traffic counts match even across seeds
    // (message complexity is deterministic); convergence beats may differ.
    let (ta, ..) = run(42);
    let (tb, ..) = run(43);
    assert!(ta.is_some() && tb.is_some());
    let _ = (msgs_a, msgs_b);
}

/// The recursive §5 construction and the main construction agree on what a
/// clock is: both settle and tick mod their respective moduli.
#[test]
fn recursive_clock_full_stack() {
    use byzclock::alg::RecursiveClock;
    let mut sim = SimBuilder::new(4, 1).seed(9).build(
        |cfg, rng| {
            let mut levels_rng = rng.clone();
            RecursiveClock::new(cfg, 3, move |_| {
                byzclock::coin::ticket_coin(cfg, &mut levels_rng)
            })
        },
        SilentAdversary,
    );
    let t = run_until_stable_sync(&mut sim, 6_000, 8);
    assert!(t.is_some(), "recursive 8-clock over GVSS coins failed to converge");
}

/// Remark 4.1 variant at full scale.
#[test]
fn shared_four_clock_full_stack() {
    use byzclock::alg::SharedFourClock;
    let mut sim = SimBuilder::new(7, 2).seed(3).build(
        |cfg, rng| {
            let mut c = SharedFourClock::new(cfg, byzclock::coin::ticket_coin(cfg, rng));
            c.corrupt(rng);
            c
        },
        SilentAdversary,
    );
    assert!(run_until_stable_sync(&mut sim, 3_000, 8).is_some());
}
