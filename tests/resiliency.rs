//! Resiliency matrix: every algorithm at its designed fault budget, plus
//! the boundary behavior that motivates f < n/3 (Table 1's resiliency
//! column).

use byzclock::alg::adversary::SplitVoteAdversary;
use byzclock::alg::{run_until_stable_sync, ClockSync, OracleBeacon};
use byzclock::coin::ticket_clock_sync;
use byzclock::sim::{Application, SilentAdversary, SimBuilder};

/// The full stack converges at the maximal legal f for several n.
#[test]
fn converges_at_maximal_legal_f() {
    for (n, f) in [(4usize, 1usize), (7, 2), (10, 3)] {
        let mut sim = SimBuilder::new(n, f).seed(n as u64).build(
            |cfg, rng| {
                let mut c = ticket_clock_sync(cfg, 16, rng);
                c.corrupt(rng);
                c
            },
            SilentAdversary,
        );
        assert!(
            run_until_stable_sync(&mut sim, 3_000, 8).is_some(),
            "n={n}, f={f}: failed at the legal boundary"
        );
    }
}

/// Fewer actual faults than the budget is strictly easier.
#[test]
fn converges_with_fewer_actual_faults() {
    let mut sim = SimBuilder::new(7, 2)
        .seed(5)
        .byzantine([6u16]) // budget 2, only one actual
        .build(
            |cfg, rng| {
                let mut c = ticket_clock_sync(cfg, 16, rng);
                c.corrupt(rng);
                c
            },
            SilentAdversary,
        );
    assert!(run_until_stable_sync(&mut sim, 3_000, 8).is_some());
}

/// No Byzantine nodes at all: the fastest case.
#[test]
fn converges_all_correct() {
    let mut sim = SimBuilder::new(4, 1).all_correct().seed(9).build(
        |cfg, rng| {
            let mut c = ticket_clock_sync(cfg, 16, rng);
            c.corrupt(rng);
            c
        },
        SilentAdversary,
    );
    assert!(run_until_stable_sync(&mut sim, 2_000, 8).is_some());
}

/// The boundary: at f = n/3 the splitter keeps the oracle-coin stack from
/// converging in most runs, while the same horizon is ample at f < n/3.
/// Statistical contrast with generous margins (seeded, deterministic).
#[test]
fn boundary_f_equals_n_thirds_degrades() {
    let success_rate = |n: usize, f: usize| -> usize {
        (0..8u64)
            .filter(|&seed| {
                let b1 = OracleBeacon::perfect(seed + 1);
                let b2 = OracleBeacon::perfect(seed + 2);
                let b3 = OracleBeacon::perfect(seed + 3);
                let mut sim = SimBuilder::new(n, f).seed(seed).build(
                    move |cfg, rng| {
                        let mut c = ClockSync::new(
                            cfg,
                            8,
                            b1.source(cfg.id),
                            b2.source(cfg.id),
                            b3.source(cfg.id),
                        );
                        c.corrupt(rng);
                        c
                    },
                    SplitVoteAdversary,
                );
                run_until_stable_sync(&mut sim, 1_500, 8).is_some()
            })
            .count()
    };
    let legal = success_rate(7, 2);
    let boundary = success_rate(6, 2);
    assert!(
        legal >= 7,
        "legal configuration should almost always converge: {legal}/8"
    );
    assert!(
        boundary <= legal.saturating_sub(4),
        "f = n/3 should be clearly degraded: legal {legal}/8 vs boundary {boundary}/8"
    );
}
