//! The buffered round engine's cross-crate contract: under the paper's
//! lockstep beat it is output-identical to plain synchronous round
//! execution (any `RoundProtocol`, any cluster shape), and under bounded
//! delay a Byzantine sender lying about round tags cannot stall quorum
//! advancement.

use byzclock::alg::{BufferedApp, CoinScheme, RoundMsg, RoundProtocol};
use byzclock::sim::{
    Adversary, AdversaryView, Application, ByzOutbox, Envelope, NodeId, SilentAdversary,
    SimBuilder, SimRng, Target, TimingModel,
};
use proptest::prelude::*;
use rand::Rng;

/// A parameterized toy round protocol whose output is sensitive to every
/// inbox it sees and every RNG draw it makes — if the buffered engine
/// reordered, dropped, or duplicated anything relative to the synchronous
/// path, the outputs diverge.
#[derive(Clone)]
struct MixScheme {
    rounds: usize,
}

#[derive(Debug)]
struct MixProto {
    acc: u64,
    my: u64,
}

impl RoundProtocol for MixProto {
    type Msg = u64;
    type Output = bool;

    fn send_round(&mut self, round: usize, rng: &mut SimRng, out: &mut Vec<(Target, u64)>) {
        // A fresh draw per round makes the output RNG-schedule-sensitive.
        self.my = self
            .my
            .wrapping_add(rng.random::<u64>())
            .rotate_left(round as u32);
        out.push((Target::All, self.my));
    }

    fn recv_round(&mut self, round: usize, inbox: &[(NodeId, u64)], _rng: &mut SimRng) {
        for &(from, v) in inbox {
            self.acc = self
                .acc
                .wrapping_mul(31)
                .wrapping_add(v ^ u64::from(from.raw()))
                .wrapping_add(round as u64);
        }
    }

    fn output(&self) -> bool {
        self.acc.count_ones().is_multiple_of(2)
    }

    fn corrupt(&mut self, rng: &mut SimRng) {
        self.acc = rng.random();
        self.my = rng.random();
    }
}

impl CoinScheme for MixScheme {
    type Proto = MixProto;

    fn rounds(&self) -> usize {
        self.rounds
    }

    fn spawn(&self, rng: &mut SimRng) -> MixProto {
        MixProto {
            acc: rng.random(),
            my: rng.random(),
        }
    }
}

/// The synchronous reference: one instance at a time, exactly one round
/// per beat (the lockstep global-beat contract), same wire format as the
/// buffered app so the two runs exchange identical traffic.
struct SyncApp {
    scheme: MixScheme,
    inst: MixProto,
    round: usize,
    outputs: Vec<bool>,
}

impl SyncApp {
    fn new(scheme: MixScheme, rng: &mut SimRng) -> Self {
        let inst = scheme.spawn(rng);
        SyncApp {
            scheme,
            inst,
            round: 0,
            outputs: Vec::new(),
        }
    }
}

impl Application for SyncApp {
    type Msg = RoundMsg<u64>;

    fn send(&mut self, _phase: usize, out: &mut byzclock::sim::Outbox<'_, Self::Msg>) {
        let mut sends = Vec::new();
        self.inst.send_round(self.round, out.rng(), &mut sends);
        let tag = self.round as u8;
        for (target, msg) in sends {
            match target {
                Target::All => out.broadcast(RoundMsg { round: tag, msg }),
                Target::One(to) => out.unicast(to, RoundMsg { round: tag, msg }),
            }
        }
    }

    fn deliver(&mut self, _phase: usize, inbox: &[Envelope<Self::Msg>], rng: &mut SimRng) {
        let current: Vec<(NodeId, u64)> = inbox
            .iter()
            .filter(|e| usize::from(e.msg.round) == self.round)
            .map(|e| (e.from, e.msg.msg))
            .collect();
        self.inst.recv_round(self.round, &current, rng);
        self.round += 1;
        if self.round == self.scheme.rounds() {
            self.outputs.push(self.inst.output());
            self.inst = self.scheme.spawn(rng);
            self.round = 0;
        }
    }

    fn corrupt(&mut self, _rng: &mut SimRng) {}
}

fn buffered_outputs(
    scheme: &MixScheme,
    n: usize,
    f: usize,
    seed: u64,
    beats: u64,
) -> Vec<Vec<bool>> {
    let s = scheme.clone();
    let mut sim = SimBuilder::new(n, f).seed(seed).build(
        move |cfg, rng| BufferedApp::new(s.clone(), cfg.quorum(), 1, rng),
        SilentAdversary,
    );
    sim.run_beats(beats);
    sim.correct_apps()
        .map(|(_, a)| a.outputs().to_vec())
        .collect()
}

fn sync_outputs(scheme: &MixScheme, n: usize, f: usize, seed: u64, beats: u64) -> Vec<Vec<bool>> {
    let s = scheme.clone();
    let mut sim = SimBuilder::new(n, f).seed(seed).build(
        move |_cfg, rng| SyncApp::new(s.clone(), rng),
        SilentAdversary,
    );
    sim.run_beats(beats);
    sim.correct_apps().map(|(_, a)| a.outputs.clone()).collect()
}

proptest! {
    /// Under lockstep, buffered execution of an arbitrary `RoundProtocol`
    /// is output-identical to the synchronous path — for every cluster
    /// shape, instance depth, and seed.
    #[test]
    fn lockstep_buffered_equals_synchronous(
        seed in 0u64..500,
        rounds in 1usize..6,
        n in 4usize..9,
        beats in 8u64..40,
    ) {
        let f = (n - 1) / 3;
        let scheme = MixScheme { rounds };
        let buffered = buffered_outputs(&scheme, n, f, seed, beats);
        let sync = sync_outputs(&scheme, n, f, seed, beats);
        prop_assert_eq!(&buffered, &sync, "outputs diverged (n={}, rounds={})", n, rounds);
        // Sanity: the run actually completed instances.
        prop_assert_eq!(buffered[0].len() as u64, beats / rounds as u64);
    }
}

/// A Byzantine strategy built entirely out of round-tag lies: every beat
/// each Byzantine node stuffs duplicate messages for every wheel slot,
/// claims out-of-range tags, lies about the envelope send beat, and
/// scatters copies across the delivery window.
struct TagChaos;

impl Adversary<RoundMsg<u64>> for TagChaos {
    fn act(
        &mut self,
        view: &AdversaryView<'_, RoundMsg<u64>>,
        out: &mut ByzOutbox<'_, RoundMsg<u64>>,
    ) {
        for &b in view.byzantine() {
            for to in view.all_ids() {
                for tag in 0..8u8 {
                    // Duplicate stuffing: several copies per (sender, tag).
                    for copy in 0..2u64 {
                        out.send_tagged_after(
                            b,
                            to,
                            RoundMsg {
                                round: tag,
                                msg: u64::from(tag) ^ copy,
                            },
                            view.beat().wrapping_add(1_000), // claimed beat: a lie
                            copy % view.delay_window(),
                        );
                    }
                }
                out.send(b, to, RoundMsg { round: 255, msg: 0 }); // garbage tag
            }
        }
    }
}

/// Byzantine round-tag lies cannot stall quorum advancement: with `n - f`
/// correct nodes announcing honestly under bounded delay, the engine keeps
/// completing instances, and the overwhelming majority of advancements are
/// quorum-driven (the liars only populate the drop counters).
#[test]
fn tag_lies_cannot_stall_quorum_advancement() {
    for seed in 0..3u64 {
        let scheme = MixScheme { rounds: 4 };
        let window = 2u64;
        let beats = 200u64;
        let s = scheme.clone();
        let mut sim = SimBuilder::new(7, 2)
            .seed(seed)
            .timing(TimingModel::bounded(window))
            .build(
                move |cfg, rng| BufferedApp::new(s.clone(), cfg.quorum(), window, rng),
                TagChaos,
            );
        sim.run_beats(beats);
        for (id, app) in sim.correct_apps() {
            let stats = app.engine().stats();
            // Liveness: rounds keep completing (each round takes at most
            // `window` beats by the timeout rule alone).
            let min_instances = beats / (window * 4) / 2;
            assert!(
                app.outputs().len() as u64 >= min_instances,
                "node {id} stalled: {} instances, stats {stats:?}",
                app.outputs().len()
            );
            // The point of the test: advancement stays quorum-driven — the
            // 5 correct announcements always arrive within the window, so
            // the adversary's tags never force the timeout path to carry
            // the protocol.
            assert!(
                stats.quorum_advances >= 9 * stats.timeout_advances,
                "node {id}: tag lies degraded advancement to timeouts: {stats:?}"
            );
            // And the lies are visibly absorbed, not silently accepted.
            assert!(stats.dropped_duplicates > 0, "node {id}: {stats:?}");
            assert!(stats.dropped_garbage > 0, "node {id}: {stats:?}");
        }
    }
}

/// The timeout edge: a quorum that completes on the exact beat the window
/// expires must advance by the *quorum* rule — the timeout is the
/// fallback, not a race winner. Pinned under both API orderings:
/// [`BufferedRounds::poll`]'s internal check-quorum-then-age, and the
/// manual `quorum_ready` / `age` / `expired` seam that `bd-clock` drives
/// by hand (where the model checker showed the window=1 degenerate case
/// makes this exact race the whole ballgame).
#[test]
fn quorum_on_exact_expiry_beat_takes_the_quorum_path() {
    use byzclock::alg::{Advance, BufferedRounds};
    use rand::SeedableRng;

    let window = 3u64;
    let fresh = || MixProto { acc: 0, my: 0 };
    let quorum_inbox: Vec<(NodeId, RoundMsg<u64>)> = (0..3u16)
        .map(|i| (NodeId::new(i), RoundMsg { round: 0, msg: 7 }))
        .collect();

    // Ordering 1: `poll`. Quiet beats age the round to one short of the
    // window; on the edge beat the quorum lands and `poll` must fire the
    // quorum rule even though this same call would have expired the round.
    let mut rng = SimRng::seed_from_u64(1);
    let mut eng: BufferedRounds<MixProto> = BufferedRounds::new(4, 3, window, fresh);
    for _ in 0..window - 1 {
        assert!(eng.poll(&mut rng, |_, _| fresh()).is_none());
    }
    assert_eq!(eng.beats_waiting(), window - 1);
    eng.ingest(&quorum_inbox);
    let (kind, _) = eng.poll(&mut rng, |_, _| fresh()).expect("must advance");
    assert_eq!(kind, Advance::Quorum, "quorum must win the expiry beat");
    assert_eq!(eng.stats().quorum_advances, 1);
    assert_eq!(eng.stats().timeout_advances, 0);
    assert_eq!(eng.round(), 1);

    // Control: the identical schedule minus the quorum fires the timeout
    // on that very beat — proving the edge was real.
    let mut eng: BufferedRounds<MixProto> = BufferedRounds::new(4, 3, window, fresh);
    for _ in 0..window - 1 {
        assert!(eng.poll(&mut rng, |_, _| fresh()).is_none());
    }
    let (kind, _) = eng.poll(&mut rng, |_, _| fresh()).expect("must advance");
    assert_eq!(kind, Advance::Timeout);

    // Ordering 2: the manual seam, exactly as `bd-clock` interleaves it —
    // quorum first, then age, then the expiry check.
    let mut eng: BufferedRounds<MixProto> = BufferedRounds::new(4, 3, window, fresh);
    for beat in 1..=window {
        if beat == window {
            eng.ingest(&quorum_inbox);
        }
        if eng.quorum_ready() {
            eng.advance(Advance::Quorum, &mut rng, |_, _| fresh());
            continue;
        }
        eng.age();
        assert!(
            !eng.expired() || beat >= window,
            "beat {beat}: expired before the window"
        );
        if eng.expired() {
            eng.advance(Advance::Timeout, &mut rng, |_, _| fresh());
        }
    }
    assert_eq!(eng.stats().quorum_advances, 1);
    assert_eq!(eng.stats().timeout_advances, 0);
    assert_eq!(eng.round(), 1);
}

/// The engine's buffering is what closes the d1 gap mechanically: the same
/// toy protocol that runs 1 round/beat under lockstep still completes
/// every instance under `delay=3`, just stretched — while a synchronous
/// executor under the same delay mangles rounds (messages land outside
/// the round they belong to and are lost).
#[test]
fn buffered_engine_survives_bounded_delay_where_sync_does_not() {
    let scheme = MixScheme { rounds: 3 };
    let window = 3u64;
    let s = scheme.clone();
    let mut sim = SimBuilder::new(7, 2)
        .seed(5)
        .timing(TimingModel::bounded(window))
        .build(
            move |cfg, rng| BufferedApp::new(s.clone(), cfg.quorum(), window, rng),
            SilentAdversary,
        );
    sim.run_beats(120);
    for (_, app) in sim.correct_apps() {
        assert!(app.outputs().len() >= 10, "{}", app.outputs().len());
        let stats = app.engine().stats();
        assert!(
            stats.buffered_ahead > 0,
            "a 3-beat window must produce early traffic: {stats:?}"
        );
    }

    // The synchronous executor under the same window: every message that
    // arrives late misses its round entirely; with a 3-beat window most
    // rounds see a fraction of the traffic the protocol was specified for.
    let s = scheme.clone();
    let mut sync_sim = SimBuilder::new(7, 2)
        .seed(5)
        .timing(TimingModel::bounded(window))
        .build(
            move |_cfg, rng| SyncApp::new(s.clone(), rng),
            SilentAdversary,
        );
    sync_sim.run_beats(120);
    let (buffered, sync): (Vec<_>, Vec<_>) = {
        let b = sim
            .correct_apps()
            .map(|(_, a)| a.outputs().to_vec())
            .collect();
        let s = sync_sim
            .correct_apps()
            .map(|(_, a)| a.outputs.clone())
            .collect();
        (b, s)
    };
    assert_ne!(
        buffered, sync,
        "under delay the two execution modes must actually diverge"
    );
}
