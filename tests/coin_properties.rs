//! Statistical and structural properties of the common coin at the system
//! level (Definition 2.6/2.7 contract over the real simulator).

use byzclock::coin::{coin_stats, measure_coin, CoinApp, TicketCoinScheme, XorCoinScheme};
use byzclock::sim::{FaultEvent, FaultKind, FaultPlan, SilentAdversary, SimBuilder, Visibility};

/// Events E0 and E1 both occur with constant probability (Def. 2.7), for
/// several cluster sizes.
#[test]
fn both_events_occur_with_constant_probability() {
    for &(n, f) in &[(4usize, 1usize), (7, 2)] {
        let stats = measure_coin(n, f, 42, 200, TicketCoinScheme::new, SilentAdversary);
        assert!(stats.p0() > 0.25, "n={n}: p0 too small: {stats:?}");
        assert!(stats.p1() > 0.10, "n={n}: p1 too small: {stats:?}");
        assert!(stats.agreement_rate() > 0.95, "n={n}: {stats:?}");
    }
}

/// The FM lottery asymmetry: p0 > p1 (a zero ticket is more likely than
/// none), but both constant.
#[test]
fn ticket_lottery_asymmetry() {
    let stats = measure_coin(7, 2, 7, 400, TicketCoinScheme::new, SilentAdversary);
    assert!(
        stats.p0() > stats.p1(),
        "the zero-ticket event should dominate: {stats:?}"
    );
    // Rough match with 1 - (1 - 1/7)^7 ≈ 0.66.
    assert!((stats.p0() - 0.66).abs() < 0.15, "{stats:?}");
}

/// The XOR coin is near-fair on honest runs.
#[test]
fn xor_coin_fairness() {
    let stats = measure_coin(4, 1, 3, 400, XorCoinScheme::new, SilentAdversary);
    assert!((stats.p0() - 0.5).abs() < 0.12, "{stats:?}");
    assert!(stats.agreement_rate() > 0.95, "{stats:?}");
}

/// Pipeline self-stabilization at system level: scramble the coin state of
/// every node mid-run; within Δ_A beats the stream is common again
/// (Lemma 1 / Theorem 1).
#[test]
fn coin_stream_heals_after_corruption() {
    let plan = FaultPlan::new(vec![FaultEvent {
        beat: 30,
        kind: FaultKind::CorruptAllCorrect,
    }]);
    let mut sim = SimBuilder::new(7, 2).seed(13).faults(plan).build(
        |cfg, rng| CoinApp::new(TicketCoinScheme::new(cfg), rng),
        SilentAdversary,
    );
    sim.run_beats(60);
    let histories: Vec<&[bool]> = sim.correct_apps().map(|(_, a)| a.history()).collect();
    // After beat 30 + Δ_A + 1 every beat must be common again.
    for beat in 36..60 {
        let first = histories[0][beat];
        assert!(
            histories.iter().all(|h| h[beat] == first),
            "beat {beat}: stream did not heal"
        );
    }
}

/// Unpredictability sanity: the bit stream is not constant and has no
/// trivial period (a weak but deterministic check on the entropy path).
#[test]
fn stream_is_not_degenerate() {
    let mut sim = SimBuilder::new(4, 1).seed(5).build(
        |cfg, rng| CoinApp::new(TicketCoinScheme::new(cfg), rng),
        SilentAdversary,
    );
    sim.run_beats(80);
    let (_, app) = sim.correct_apps().next().unwrap();
    let bits = &app.history()[4..];
    let ones = bits.iter().filter(|&&b| b).count();
    assert!(
        ones > 5 && ones < bits.len() - 5,
        "degenerate stream: {ones}/{}",
        bits.len()
    );
    // Not alternating either.
    let alternations = bits.windows(2).filter(|w| w[0] != w[1]).count();
    assert!(
        alternations < bits.len() - 8,
        "suspiciously periodic stream"
    );
}

/// Omniscient visibility (a what-if beyond the model) still cannot change
/// recovered values: binding is enforced by the decoder, not by secrecy.
#[test]
fn binding_survives_omniscient_visibility() {
    let stats = {
        let mut sim = SimBuilder::new(7, 2)
            .seed(21)
            .visibility(Visibility::Omniscient)
            .build(
                |cfg, rng| CoinApp::new(TicketCoinScheme::new(cfg), rng),
                SilentAdversary,
            );
        sim.run_beats(60);
        coin_stats(&sim, 4)
    };
    assert!(stats.agreement_rate() > 0.95, "{stats:?}");
}
