//! Self-stabilization across the whole algorithm zoo: convergence resumes
//! after memory scrambling, phantom replays, and blackouts (Def. 2.2–2.5).

use byzclock::alg::{run_until_stable_sync, DigitalClock, OracleBeacon, TwoClock};
use byzclock::baselines::{DwClock, PhaseKingScheme, PkClock};
use byzclock::coin::ticket_clock_sync;
use byzclock::sim::{
    Adversary, Application, FaultEvent, FaultKind, FaultPlan, SilentAdversary, SimBuilder,
};

fn storm(at: u64) -> FaultPlan {
    FaultPlan::new(vec![
        FaultEvent {
            beat: at,
            kind: FaultKind::CorruptAllCorrect,
        },
        FaultEvent {
            beat: at,
            kind: FaultKind::PhantomBurst { count: 120 },
        },
        FaultEvent {
            beat: at + 1,
            kind: FaultKind::Blackout { beats: 2 },
        },
    ])
}

fn recovers<A, Adv>(mut sim: byzclock::sim::Simulation<A, Adv>, fault_at: u64, horizon: u64) -> bool
where
    A: Application + DigitalClock + Send,
    A::Msg: Send,
    Adv: Adversary<A::Msg>,
{
    sim.run_beats(fault_at + 4); // past the fault and the blackout
    run_until_stable_sync(&mut sim, fault_at + 4 + horizon, 8).is_some()
}

#[test]
fn full_stack_recovers_from_fault_storm() {
    for seed in 0..3 {
        let sim = SimBuilder::new(7, 2)
            .seed(seed)
            .faults(storm(40))
            .build(|cfg, rng| ticket_clock_sync(cfg, 32, rng), SilentAdversary);
        assert!(recovers(sim, 40, 3_000), "seed {seed}: no recovery");
    }
}

#[test]
fn two_clock_recovers() {
    let beacon = OracleBeacon::perfect(17);
    let sim = SimBuilder::new(7, 2).seed(1).faults(storm(30)).build(
        move |cfg, _rng| TwoClock::new(cfg, beacon.source(cfg.id)),
        SilentAdversary,
    );
    assert!(recovers(sim, 30, 2_000));
}

#[test]
fn deterministic_clock_recovers_in_o_f() {
    let mut sim = SimBuilder::new(7, 2).seed(2).faults(storm(50)).build(
        |cfg, _rng| PkClock::new(PhaseKingScheme::new(cfg), 16),
        SilentAdversary,
    );
    sim.run_beats(54);
    let t = run_until_stable_sync(&mut sim, 1_000, 8).expect("recovery");
    // R = 11 for f = 2: a few windows suffice.
    assert!(t <= 54 + 10 * 11, "recovery at beat {t} is not O(f)-fast");
}

#[test]
fn dw_clock_recovers_eventually() {
    let sim = SimBuilder::new(4, 1)
        .seed(3)
        .faults(storm(20))
        .build(|cfg, _rng| DwClock::new(cfg, 2), SilentAdversary);
    assert!(recovers(sim, 20, 20_000));
}

/// Repeated fault storms: the system re-converges after each one.
#[test]
fn survives_repeated_storms() {
    let mut plan = FaultPlan::none();
    for at in [30u64, 80, 130] {
        plan.push(FaultEvent {
            beat: at,
            kind: FaultKind::CorruptAllCorrect,
        });
        plan.push(FaultEvent {
            beat: at,
            kind: FaultKind::PhantomBurst { count: 50 },
        });
    }
    let mut sim = SimBuilder::new(7, 2)
        .seed(4)
        .faults(plan)
        .build(|cfg, rng| ticket_clock_sync(cfg, 16, rng), SilentAdversary);
    for window_end in [80u64, 130, 230] {
        let t = run_until_stable_sync(&mut sim, window_end, 8);
        assert!(t.is_some(), "no re-convergence before beat {window_end}");
        sim.run_until(window_end, |_| false);
    }
}

/// Committee-targeting corruption: scramble *every* member of the
/// committee serving at the fault beat — the strongest transient fault the
/// rotation schedule must absorb. The epoch permutation plus the sliding
/// window hand the coin to fresh members within `ceil(n/c)` beats, so the
/// committee stack re-converges inside the usual contract bound instead of
/// being owned by one poisoned committee.
#[test]
fn committee_stack_recovers_when_its_serving_committee_is_corrupted() {
    use byzclock::coin::{
        committee_clock_sync, committee_epoch_seed, committee_members, default_committee_size,
    };
    let (n, f, seed, fault_at) = (32usize, 1usize, 9u64, 30u64);
    let c = default_committee_size(n);
    let epoch_seed = committee_epoch_seed(seed);
    let victims = committee_members(n, c, epoch_seed, fault_at);
    let plan = FaultPlan::new(vec![FaultEvent {
        beat: fault_at,
        kind: FaultKind::CorruptNodes(victims),
    }]);
    let mut sim = SimBuilder::new(n, f).seed(seed).faults(plan).build(
        move |cfg, rng| committee_clock_sync(cfg, 8, c, epoch_seed, rng),
        SilentAdversary,
    );
    sim.run_beats(fault_at + 1);
    let t = run_until_stable_sync(&mut sim, fault_at + 1 + 400, 8);
    assert!(t.is_some(), "no recovery after whole-committee corruption");
}

/// Partial corruption: fewer than all nodes scrambled must also recover
/// (and typically faster, since a correct quorum may persist).
#[test]
fn partial_corruption_recovers() {
    use byzclock::sim::NodeId;
    let plan = FaultPlan::new(vec![FaultEvent {
        beat: 35,
        kind: FaultKind::CorruptNodes(vec![NodeId::new(0), NodeId::new(1)]),
    }]);
    let mut sim = SimBuilder::new(7, 2)
        .seed(6)
        .faults(plan)
        .build(|cfg, rng| ticket_clock_sync(cfg, 32, rng), SilentAdversary);
    sim.run_beats(36);
    assert!(run_until_stable_sync(&mut sim, 2_000, 8).is_some());
}
